//! Coarse block-level cross-validation splits (paper Section VI-A): to avoid
//! information leakage between spatially adjacent grids, every `B×B` block of
//! regions is treated as an atomic unit and whole blocks are assigned to
//! folds. Fold assignment greedily balances positive and total label counts.

use rand::seq::SliceRandom;
use rand::Rng;
use uvd_tensor::{seeded_rng, Rng64};
use uvd_urg::Urg;

/// Block side in regions (paper: 10×10 at 93k-region scale; 8×8 here).
pub const DEFAULT_BLOCK: usize = 8;

/// Assign each labeled sample (index into `urg.labeled`) to one of `k` folds
/// at block granularity. Returns `folds[f]` = labeled-sample indices of fold
/// `f`. Every returned fold is non-empty and (when possible) contains
/// positives: when the labeled blocks are fewer than `k` (e.g. one oversized
/// block swallows the whole city), `k` is clamped to the labeled-sample
/// count and any fold left empty by block-atomic assignment is filled by
/// splitting the largest fold — block atomicity is sacrificed only in that
/// degenerate case, never when enough blocks exist.
pub fn block_folds(urg: &Urg, k: usize, block: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    // Never ask for more folds than there are labeled samples.
    let n_labeled = urg.labeled.len();
    let k = k.min(n_labeled).max(2);
    let blocks_w = urg.width.div_ceil(block);
    let block_of = |region: u32| -> usize {
        let x = region as usize % urg.width;
        let y = region as usize / urg.width;
        (y / block) * blocks_w + (x / block)
    };

    // Group labeled samples by block.
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for (i, &r) in urg.labeled.iter().enumerate() {
        groups.entry(block_of(r)).or_default().push(i);
    }
    let mut blocks: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
    // Shuffle for randomness, then order by positive count (desc) so the
    // greedy balancer distributes positives first.
    let mut rng = seeded_rng(seed);
    blocks.shuffle(&mut rng);
    let pos_count = |members: &[usize]| members.iter().filter(|&&i| urg.y[i] > 0.5).count();
    blocks.sort_by_key(|(_, members)| std::cmp::Reverse((pos_count(members), members.len())));

    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut fold_pos = vec![0usize; k];
    for (_, members) in blocks {
        // Assign to the fold with fewest positives, tie-broken by size.
        let f = (0..k)
            .min_by_key(|&f| (fold_pos[f], folds[f].len()))
            .expect("k >= 2");
        fold_pos[f] += pos_count(&members);
        folds[f].extend(members);
    }

    // Degenerate rebalance: with fewer labeled blocks than folds, some folds
    // come out empty (and would produce empty test splits downstream). Move
    // half of the largest fold into each empty one.
    while folds.iter().any(Vec::is_empty) {
        let (largest, _) = folds
            .iter()
            .enumerate()
            .max_by_key(|(_, f)| f.len())
            .expect("k >= 2");
        if folds[largest].len() < 2 {
            // Cannot split further (fewer labeled samples than folds even
            // after clamping — unreachable, but avoid looping forever).
            break;
        }
        let empty = folds
            .iter()
            .position(Vec::is_empty)
            .expect("an empty fold exists");
        let len = folds[largest].len();
        let moved = folds[largest].split_off(len - len / 2);
        folds[empty] = moved;
    }

    for fold in &mut folds {
        fold.sort_unstable();
    }
    folds
}

/// Train/test index pairs for k-fold CV from precomputed folds.
pub fn train_test_pairs(folds: &[Vec<usize>]) -> Vec<(Vec<usize>, Vec<usize>)> {
    (0..folds.len())
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// Random mask keeping `ratio` of the training indices (Figure 6(c)):
/// guarantees at least one positive and one negative survive when present.
pub fn mask_ratio(urg: &Urg, train_idx: &[usize], ratio: f64, rng: &mut Rng64) -> Vec<usize> {
    let mut kept: Vec<usize> = train_idx
        .iter()
        .copied()
        .filter(|_| rng.gen::<f64>() < ratio)
        .collect();
    let has = |v: &[usize], positive: bool| v.iter().any(|&i| (urg.y[i] > 0.5) == positive);
    for positive in [true, false] {
        if !has(&kept, positive) {
            if let Some(&i) = train_idx.iter().find(|&&i| (urg.y[i] > 0.5) == positive) {
                kept.push(i);
            }
        }
    }
    kept.sort_unstable();
    kept.dedup();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn urg(seed: u64) -> Urg {
        let city = City::from_config(CityPreset::tiny(), seed);
        Urg::build(&city, UrgOptions::no_image())
    }

    #[test]
    fn folds_partition_labeled_set() {
        let u = urg(1);
        let folds = block_folds(&u, 3, 4, 7);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..u.labeled.len()).collect();
        assert_eq!(all, expect, "folds must partition the labeled set");
    }

    #[test]
    fn folds_do_not_split_blocks() {
        let u = urg(2);
        let block = 4;
        let folds = block_folds(&u, 3, block, 3);
        let blocks_w = u.width.div_ceil(block);
        let block_of = |region: u32| {
            let x = region as usize % u.width;
            let y = region as usize / u.width;
            (y / block) * blocks_w + (x / block)
        };
        // A block's samples must all live in one fold.
        let mut owner: std::collections::HashMap<usize, usize> = Default::default();
        for (f, fold) in folds.iter().enumerate() {
            for &i in fold {
                let b = block_of(u.labeled[i]);
                if let Some(&prev) = owner.get(&b) {
                    assert_eq!(prev, f, "block {b} split across folds");
                } else {
                    owner.insert(b, f);
                }
            }
        }
    }

    #[test]
    fn folds_balance_positives() {
        let u = urg(3);
        let folds = block_folds(&u, 3, 4, 11);
        let pos: Vec<usize> = folds
            .iter()
            .map(|f| f.iter().filter(|&&i| u.y[i] > 0.5).count())
            .collect();
        let max = *pos.iter().max().expect("3 folds");
        let min = *pos.iter().min().expect("3 folds");
        // Block granularity limits balance; allow slack but forbid
        // a fold with no positives when there are plenty.
        assert!(min > 0, "every fold should hold positives: {pos:?}");
        assert!(max - min <= u.y.iter().filter(|&&v| v > 0.5).count() / 2);
    }

    #[test]
    fn oversized_block_still_yields_nonempty_folds() {
        // Regression: a block size covering the whole city collapses every
        // labeled sample into one block; the greedy assigner used to leave
        // k-1 folds empty (and downstream test splits empty with them).
        let u = urg(6);
        let huge = u.width.max(u.n / u.width) * 2;
        for k in [2, 3, 5] {
            let folds = block_folds(&u, k, huge, 7);
            assert_eq!(folds.len(), k);
            assert!(
                folds.iter().all(|f| !f.is_empty()),
                "k={k}: every fold must be non-empty, got sizes {:?}",
                folds.iter().map(Vec::len).collect::<Vec<_>>()
            );
            // Still a partition of the labeled set.
            let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
            all.sort_unstable();
            let expect: Vec<usize> = (0..u.labeled.len()).collect();
            assert_eq!(all, expect);
        }
    }

    #[test]
    fn more_folds_than_labeled_samples_clamps() {
        let u = urg(7);
        // Ask for far more folds than labeled samples; the clamp keeps the
        // split well-defined instead of producing empty test folds.
        let folds = block_folds(&u, u.labeled.len() + 10, 4, 3);
        assert_eq!(folds.len(), u.labeled.len());
        assert!(folds.iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn train_test_pairs_are_complementary() {
        let u = urg(4);
        let folds = block_folds(&u, 3, 4, 5);
        for (train, test) in train_test_pairs(&folds) {
            assert_eq!(train.len() + test.len(), u.labeled.len());
            let t: std::collections::HashSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !t.contains(i)));
        }
    }

    #[test]
    fn mask_ratio_reduces_and_keeps_classes() {
        let u = urg(5);
        let train: Vec<usize> = (0..u.labeled.len()).collect();
        let mut rng = seeded_rng(9);
        let kept = mask_ratio(&u, &train, 0.25, &mut rng);
        assert!(kept.len() < train.len());
        assert!(kept.iter().any(|&i| u.y[i] > 0.5));
        assert!(kept.iter().any(|&i| u.y[i] < 0.5));
        // Deterministic given the RNG state.
        let mut rng2 = seeded_rng(9);
        assert_eq!(kept, mask_ratio(&u, &train, 0.25, &mut rng2));
    }
}
