//! Detector construction by method kind, with the per-city hyper-parameters
//! used in the experiments.

use cmsf::{Cmsf, CmsfConfig};
use uvd_baselines::{
    BaselineConfig, GraphBaseline, ImgagnBaseline, MlpBaseline, MmreBaseline, MuvfcnBaseline,
    UvlensBaseline,
};
use uvd_urg::{Detector, Urg};

/// Every detector the experiments compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    Mlp,
    Gcn,
    Gat,
    Mmre,
    Uvlens,
    Muvfcn,
    Imgagn,
    Cmsf,
    /// Ablation: MAGA replaced by vanilla per-modality GAT (no cross-modal).
    CmsfM,
    /// Ablation: no MS-Gate / slave stage.
    CmsfG,
    /// Ablation: no hierarchy (GSCM + MS-Gate removed).
    CmsfH,
}

impl MethodKind {
    /// Table II row order.
    pub const TABLE2: [MethodKind; 8] = [
        MethodKind::Mlp,
        MethodKind::Gcn,
        MethodKind::Gat,
        MethodKind::Mmre,
        MethodKind::Uvlens,
        MethodKind::Muvfcn,
        MethodKind::Imgagn,
        MethodKind::Cmsf,
    ];

    /// Figure 5(a) ablation variants.
    pub const FIG5A: [MethodKind; 4] = [
        MethodKind::Cmsf,
        MethodKind::CmsfM,
        MethodKind::CmsfG,
        MethodKind::CmsfH,
    ];

    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Mlp => "MLP",
            MethodKind::Gcn => "GCN",
            MethodKind::Gat => "GAT",
            MethodKind::Mmre => "MMRE",
            MethodKind::Uvlens => "UVLens",
            MethodKind::Muvfcn => "MUVFCN",
            MethodKind::Imgagn => "ImGAGN",
            MethodKind::Cmsf => "CMSF",
            MethodKind::CmsfM => "CMSF-M",
            MethodKind::CmsfG => "CMSF-G",
            MethodKind::CmsfH => "CMSF-H",
        }
    }

    /// True for methods that require the image modality (raw pixels).
    pub fn needs_raw_images(self) -> bool {
        matches!(self, MethodKind::Uvlens | MethodKind::Muvfcn)
    }
}

/// CMSF configuration for a city, honoring the quick flag.
pub fn cmsf_config(urg: &Urg, seed: u64, quick: bool) -> CmsfConfig {
    let mut cfg = CmsfConfig::for_city(&urg.name);
    cfg.seed = seed;
    if quick {
        cfg.master_epochs = 20;
        cfg.slave_epochs = 6;
    }
    cfg
}

/// Baseline configuration per method kind.
pub fn baseline_config(kind: MethodKind, seed: u64, quick: bool) -> BaselineConfig {
    let mut cfg = BaselineConfig {
        seed,
        ..Default::default()
    };
    cfg.epochs = match kind {
        MethodKind::Mlp => 100,
        MethodKind::Gcn | MethodKind::Gat => 150,
        MethodKind::Mmre => 30,
        MethodKind::Imgagn => 30,
        MethodKind::Uvlens | MethodKind::Muvfcn => 25,
        _ => 80,
    };
    if quick {
        cfg.epochs = (cfg.epochs / 4).max(5);
    }
    cfg
}

/// Build a detector of the given kind for a URG.
pub fn build_detector(kind: MethodKind, urg: &Urg, seed: u64, quick: bool) -> Box<dyn Detector> {
    match kind {
        MethodKind::Mlp => Box::new(MlpBaseline::new(urg, baseline_config(kind, seed, quick))),
        MethodKind::Gcn => Box::new(GraphBaseline::gcn(urg, baseline_config(kind, seed, quick))),
        MethodKind::Gat => Box::new(GraphBaseline::gat(urg, baseline_config(kind, seed, quick))),
        MethodKind::Mmre => Box::new(MmreBaseline::new(urg, baseline_config(kind, seed, quick))),
        MethodKind::Uvlens => {
            Box::new(UvlensBaseline::new(urg, baseline_config(kind, seed, quick)))
        }
        MethodKind::Muvfcn => {
            Box::new(MuvfcnBaseline::new(urg, baseline_config(kind, seed, quick)))
        }
        MethodKind::Imgagn => {
            Box::new(ImgagnBaseline::new(urg, baseline_config(kind, seed, quick)))
        }
        MethodKind::Cmsf => Box::new(Cmsf::new(urg, cmsf_config(urg, seed, quick))),
        MethodKind::CmsfM => {
            let mut cfg = cmsf_config(urg, seed, quick);
            cfg.use_maga_cross = false;
            Box::new(Cmsf::new(urg, cfg))
        }
        MethodKind::CmsfG => {
            let mut cfg = cmsf_config(urg, seed, quick);
            cfg.use_gate = false;
            Box::new(Cmsf::new(urg, cfg))
        }
        MethodKind::CmsfH => {
            let mut cfg = cmsf_config(urg, seed, quick);
            cfg.use_hierarchy = false;
            cfg.use_gate = false;
            Box::new(Cmsf::new(urg, cfg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    #[test]
    fn all_kinds_build() {
        let city = City::from_config(CityPreset::tiny(), 1);
        let urg = Urg::build(&city, UrgOptions::default());
        for kind in MethodKind::TABLE2.into_iter().chain(MethodKind::FIG5A) {
            let d = build_detector(kind, &urg, 0, true);
            assert_eq!(d.name(), kind.label());
            assert!(d.num_params() > 0, "{:?}", kind);
        }
    }

    #[test]
    fn quick_flag_reduces_epochs() {
        let slow = baseline_config(MethodKind::Gcn, 0, false);
        let quick = baseline_config(MethodKind::Gcn, 0, true);
        assert!(quick.epochs < slow.epochs);
    }
}
