//! Canonical dataset instances: each preset city is generated with a fixed
//! seed so that "the Shenzhen-like dataset" is the same object across all
//! experiments, mirroring a collected-once real dataset.

use uvd_citysim::{City, CityPreset};
use uvd_urg::{Urg, UrgOptions};

/// Fixed generation seed per preset (the "data collection date").
pub fn dataset_seed(preset: CityPreset) -> u64 {
    match preset {
        CityPreset::ShenzhenLike => 20200601,
        CityPreset::FuzhouLike => 20200602,
        CityPreset::BeijingLike => 20200603,
    }
}

/// Generate the canonical city for a preset.
pub fn dataset_city(preset: CityPreset) -> City {
    City::from_preset(preset, dataset_seed(preset))
}

/// Build the canonical URG for a preset with the given options.
pub fn dataset_urg(preset: CityPreset, opts: UrgOptions) -> Urg {
    Urg::build(&dataset_city(preset), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_cities_are_stable() {
        let a = dataset_city(CityPreset::FuzhouLike);
        let b = dataset_city(CityPreset::FuzhouLike);
        assert_eq!(a.land_use, b.land_use);
        assert_eq!(a.labels.uv_regions, b.labels.uv_regions);
    }

    #[test]
    fn presets_have_distinct_seeds() {
        let seeds: std::collections::HashSet<u64> =
            CityPreset::ALL.iter().map(|&p| dataset_seed(p)).collect();
        assert_eq!(seeds.len(), 3);
    }
}
