//! Experiment runner: k-fold block CV × random seeds for any detector,
//! aggregating the paper's metrics plus the Table III efficiency columns.

use crate::factory::{build_detector, MethodKind};
use crate::metrics::{auc, prf_at_top_percent, Prf};
use crate::records::{MeanStd, MethodSummary, PSummary};
use crate::splits::{block_folds, mask_ratio, train_test_pairs, DEFAULT_BLOCK};
use std::time::Instant;
use uvd_tensor::init::derive_seed;
use uvd_tensor::par;
use uvd_tensor::seeded_rng;
use uvd_urg::{Detector, Urg};

/// How an experiment is run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    pub folds: usize,
    pub block: usize,
    pub seeds: Vec<u64>,
    /// Top-p% thresholds to evaluate (paper: 3 and 5).
    pub ps: Vec<usize>,
    /// Reduced-epoch mode for smoke runs.
    pub quick: bool,
    /// Keep only this fraction of each training split (Figure 6(c)); 1.0
    /// disables masking.
    pub label_ratio: f64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            folds: 3,
            block: DEFAULT_BLOCK,
            seeds: vec![0, 1],
            ps: vec![3, 5],
            quick: false,
            label_ratio: 1.0,
        }
    }
}

impl RunSpec {
    pub fn quick() -> Self {
        RunSpec {
            quick: true,
            seeds: vec![0],
            ..Default::default()
        }
    }
}

/// Evaluate region scores against the test labeled subset.
pub fn eval_scores(
    scores: &[f32],
    urg: &Urg,
    test_idx: &[usize],
    ps: &[usize],
) -> (f64, Vec<(usize, Prf)>) {
    let s: Vec<f32> = test_idx
        .iter()
        .map(|&i| scores[urg.labeled[i] as usize])
        .collect();
    let y: Vec<f32> = test_idx.iter().map(|&i| urg.y[i]).collect();
    let a = auc(&s, &y);
    let prfs = ps
        .iter()
        .map(|&p| (p, prf_at_top_percent(&s, &y, p)))
        .collect();
    (a, prfs)
}

/// Run one detector kind through the full protocol on a URG.
pub fn run_method(kind: MethodKind, urg: &Urg, spec: &RunSpec) -> MethodSummary {
    run_custom(urg, spec, kind.label(), |seed, urg| {
        build_detector(kind, urg, seed, spec.quick)
    })
}

/// One (seed, fold) training/evaluation unit, precomputed so the pairs can
/// fan out across threads.
struct FoldTask {
    si: usize,
    model_seed: u64,
    train: Vec<usize>,
    test: Vec<usize>,
}

/// Measurements from one completed fold run.
struct FoldOutcome {
    si: usize,
    auc: f64,
    prfs: Vec<(usize, Prf)>,
    epoch_sec: f64,
    infer_sec: f64,
    model_mb: f64,
}

/// Run an arbitrary detector builder through the protocol (used by the
/// hyper-parameter sweeps, which need CMSF config overrides).
///
/// Every (seed, fold) pair is independent, so the pairs run in parallel via
/// [`uvd_tensor::par::run_tasks`]; each task trains with nested kernel
/// parallelism disabled, so its numerics are identical to a serial run, and
/// results are aggregated in deterministic task order.
pub fn run_custom(
    urg: &Urg,
    spec: &RunSpec,
    label: &str,
    builder: impl Fn(u64, &Urg) -> Box<dyn Detector> + Sync,
) -> MethodSummary {
    // Precompute every (seed, fold) split on the main thread: the fold
    // layout and label masking depend only on seeds, not on training.
    let mut tasks: Vec<FoldTask> = Vec::new();
    for (si, &seed) in spec.seeds.iter().enumerate() {
        let folds = block_folds(urg, spec.folds, spec.block, derive_seed(seed, 0xF01D));
        for (fi, (train, test)) in train_test_pairs(&folds).into_iter().enumerate() {
            let train = if spec.label_ratio < 1.0 {
                let mut rng = seeded_rng(derive_seed(seed, 0x3A5C + fi as u64));
                mask_ratio(urg, &train, spec.label_ratio, &mut rng)
            } else {
                train
            };
            let model_seed = derive_seed(seed, (si * spec.folds + fi) as u64);
            tasks.push(FoldTask {
                si,
                model_seed,
                train,
                test,
            });
        }
    }

    let outcomes = par::run_tasks(tasks.len(), |t| {
        let task = &tasks[t];
        let mut det = builder(task.model_seed, urg);
        let report = det.fit(urg, &task.train);
        if let Some(err) = report.error {
            // Typed training failure (bad input shapes, degenerate loss):
            // make it visible rather than silently averaging garbage.
            eprintln!("[{label}] fold {t}: training error: {err}");
        }
        let t0 = Instant::now();
        let scores = det.predict(urg);
        let infer_sec = t0.elapsed().as_secs_f64();
        let (a, prfs) = eval_scores(&scores, urg, &task.test, &spec.ps);
        FoldOutcome {
            si: task.si,
            auc: a,
            prfs,
            epoch_sec: report.secs_per_epoch(),
            infer_sec,
            model_mb: det.num_params() as f64 * 4.0 / 1.0e6,
        }
    });

    // Per-seed averages over folds (the paper reports mean/SD over runs).
    let mut auc_runs = Vec::new();
    let mut prf_runs: Vec<Vec<(usize, Prf)>> = Vec::new();
    let mut epoch_secs = Vec::new();
    let mut infer_secs = Vec::new();
    let mut model_mb = 0.0f64;
    let runs = outcomes.len();

    for (si, _) in spec.seeds.iter().enumerate() {
        let fold_outs: Vec<&FoldOutcome> = outcomes.iter().filter(|o| o.si == si).collect();
        for o in &fold_outs {
            epoch_secs.push(o.epoch_sec);
            infer_secs.push(o.infer_sec);
            model_mb = o.model_mb;
        }
        // Average folds into one run value.
        auc_runs.push(fold_outs.iter().map(|o| o.auc).sum::<f64>() / fold_outs.len() as f64);
        let mut per_p = Vec::new();
        for (pi, &p) in spec.ps.iter().enumerate() {
            let mean = |f: &dyn Fn(&Prf) -> f64| {
                fold_outs.iter().map(|o| f(&o.prfs[pi].1)).sum::<f64>() / fold_outs.len() as f64
            };
            per_p.push((
                p,
                Prf {
                    precision: mean(&|x| x.precision),
                    recall: mean(&|x| x.recall),
                    f1: mean(&|x| x.f1),
                },
            ));
        }
        prf_runs.push(per_p);
    }

    let at_p = spec
        .ps
        .iter()
        .enumerate()
        .map(|(pi, &p)| PSummary {
            p,
            recall: MeanStd::from_samples(
                &prf_runs.iter().map(|r| r[pi].1.recall).collect::<Vec<_>>(),
            ),
            precision: MeanStd::from_samples(
                &prf_runs
                    .iter()
                    .map(|r| r[pi].1.precision)
                    .collect::<Vec<_>>(),
            ),
            f1: MeanStd::from_samples(&prf_runs.iter().map(|r| r[pi].1.f1).collect::<Vec<_>>()),
        })
        .collect();

    MethodSummary {
        method: label.to_string(),
        city: urg.name.clone(),
        auc: MeanStd::from_samples(&auc_runs),
        at_p,
        train_secs_per_epoch: epoch_secs.iter().sum::<f64>() / epoch_secs.len().max(1) as f64,
        inference_secs: infer_secs.iter().sum::<f64>() / infer_secs.len().max(1) as f64,
        model_mbytes: model_mb,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn tiny_urg() -> Urg {
        let city = City::from_config(CityPreset::tiny(), 1);
        Urg::build(&city, UrgOptions::default())
    }

    #[test]
    fn eval_scores_respects_test_subset() {
        let urg = tiny_urg();
        // Oracle scores: the true labels — AUC must be 1 on any subset.
        let mut scores = vec![0.0f32; urg.n];
        for (i, &r) in urg.labeled.iter().enumerate() {
            scores[r as usize] = urg.y[i];
        }
        let test: Vec<usize> = (0..urg.labeled.len()).step_by(2).collect();
        let (a, prfs) = eval_scores(&scores, &urg, &test, &[5]);
        assert!((a - 1.0).abs() < 1e-9);
        assert!(prfs[0].1.precision > 0.99);
    }

    #[test]
    fn run_method_produces_summary() {
        let urg = tiny_urg();
        let spec = RunSpec {
            folds: 2,
            seeds: vec![0],
            quick: true,
            ..Default::default()
        };
        let s = run_method(MethodKind::Mlp, &urg, &spec);
        assert_eq!(s.method, "MLP");
        assert_eq!(s.runs, 2);
        assert!(s.auc.mean > 0.0 && s.auc.mean <= 1.0);
        assert_eq!(s.at_p.len(), 2);
        assert!(s.model_mbytes > 0.0);
    }

    #[test]
    fn label_ratio_runs() {
        let urg = tiny_urg();
        let spec = RunSpec {
            folds: 2,
            seeds: vec![0],
            quick: true,
            label_ratio: 0.3,
            ..Default::default()
        };
        let s = run_method(MethodKind::Mlp, &urg, &spec);
        assert!(s.auc.mean.is_finite());
    }
}
