//! Experiment runner: k-fold block CV × random seeds for any detector,
//! aggregating the paper's metrics plus the Table III efficiency columns.
//!
//! Failures are per-(seed, fold) and recoverable: a unit that fails to fit,
//! predicts non-finite scores, or is rejected by a metric is recorded as a
//! [`FoldOutcome::Failed`] with the stage and typed error, and the summary
//! aggregates over the surviving units. Only when *every* unit fails does a
//! run return an error.

use crate::factory::{build_detector, MethodKind};
use crate::metrics::{auc, prf_at_top_percent, MetricError, Prf};
use crate::records::{FoldOutcome, FoldStage, MeanStd, MethodSummary, PSummary};
use crate::splits::{block_folds, mask_ratio, train_test_pairs, DEFAULT_BLOCK};
use std::fmt;
use std::time::Instant;
use uvd_tensor::init::derive_seed;
use uvd_tensor::par;
use uvd_tensor::seeded_rng;
use uvd_urg::{Detector, FitError, Urg};

/// How an experiment is run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    pub folds: usize,
    pub block: usize,
    pub seeds: Vec<u64>,
    /// Top-p% thresholds to evaluate (paper: 3 and 5).
    pub ps: Vec<usize>,
    /// Reduced-epoch mode for smoke runs.
    pub quick: bool,
    /// Keep only this fraction of each training split (Figure 6(c)); 1.0
    /// disables masking.
    pub label_ratio: f64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            folds: 3,
            block: DEFAULT_BLOCK,
            seeds: vec![0, 1],
            ps: vec![3, 5],
            quick: false,
            label_ratio: 1.0,
        }
    }
}

impl RunSpec {
    pub fn quick() -> Self {
        RunSpec {
            quick: true,
            seeds: vec![0],
            ..Default::default()
        }
    }
}

/// A whole-run failure: every (seed, fold) unit of the protocol failed, so
/// there is nothing to aggregate.
#[derive(Clone, Debug)]
pub struct RunError {
    pub method: String,
    pub city: String,
    /// The per-unit failure trail (all `Failed`).
    pub failures: Vec<FoldOutcome>,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all {} (seed, fold) units failed for {} on {}",
            self.failures.len(),
            self.method,
            self.city
        )?;
        if let Some(FoldOutcome::Failed { stage, error, .. }) = self.failures.first() {
            write!(f, " (first: {stage} stage, {error})")?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

/// Typed failure of one (seed, fold) unit, attributed to a pipeline stage.
/// Stays typed until the serialization boundary ([`FoldOutcome`] stores the
/// display form).
#[derive(Clone, Debug)]
enum UnitError {
    Fit(FitError),
    /// Non-finite predictions among the test-row scores.
    Predict {
        index: usize,
        count: usize,
    },
    Evaluate(MetricError),
}

impl UnitError {
    fn stage(&self) -> FoldStage {
        match self {
            UnitError::Fit(_) => FoldStage::Fit,
            UnitError::Predict { .. } => FoldStage::Predict,
            UnitError::Evaluate(_) => FoldStage::Evaluate,
        }
    }
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::Fit(e) => write!(f, "{e}"),
            UnitError::Predict { index, count } => write!(
                f,
                "non-finite score for test row {index} ({count} non-finite total)"
            ),
            UnitError::Evaluate(e) => write!(f, "{e}"),
        }
    }
}

/// Evaluate region scores against the test labeled subset.
pub fn eval_scores(
    scores: &[f32],
    urg: &Urg,
    test_idx: &[usize],
    ps: &[usize],
) -> Result<(f64, Vec<(usize, Prf)>), MetricError> {
    let s: Vec<f32> = test_idx
        .iter()
        .map(|&i| scores[urg.labeled[i] as usize])
        .collect();
    let y: Vec<f32> = test_idx.iter().map(|&i| urg.y[i]).collect();
    let a = auc(&s, &y)?;
    let mut prfs = Vec::with_capacity(ps.len());
    for &p in ps {
        prfs.push((p, prf_at_top_percent(&s, &y, p)?));
    }
    Ok((a, prfs))
}

/// Run one detector kind through the full protocol on a URG.
pub fn run_method(kind: MethodKind, urg: &Urg, spec: &RunSpec) -> Result<MethodSummary, RunError> {
    run_custom(urg, spec, kind.label(), |seed, urg| {
        build_detector(kind, urg, seed, spec.quick)
    })
}

/// One (seed, fold) training/evaluation unit, precomputed so the pairs can
/// fan out across threads.
struct FoldTask {
    si: usize,
    fi: usize,
    model_seed: u64,
    train: Vec<usize>,
    test: Vec<usize>,
}

/// Measurements from one completed fold run.
struct FoldMeasure {
    si: usize,
    auc: f64,
    prfs: Vec<(usize, Prf)>,
    epoch_sec: f64,
    fit_sec: f64,
    infer_sec: f64,
    eval_sec: f64,
    model_mb: f64,
}

/// Run an arbitrary detector builder through the protocol (used by the
/// hyper-parameter sweeps, which need CMSF config overrides).
///
/// Every (seed, fold) pair is independent, so the pairs run in parallel via
/// [`uvd_tensor::par::run_tasks`]; each task trains with nested kernel
/// parallelism disabled, so its numerics are identical to a serial run, and
/// results are aggregated in deterministic task order.
///
/// A unit that fails at any stage is recorded in
/// [`MethodSummary::fold_outcomes`] and excluded from aggregation; the call
/// errs only when every unit failed.
pub fn run_custom(
    urg: &Urg,
    spec: &RunSpec,
    label: &str,
    builder: impl Fn(u64, &Urg) -> Box<dyn Detector> + Sync,
) -> Result<MethodSummary, RunError> {
    // Precompute every (seed, fold) split on the main thread: the fold
    // layout and label masking depend only on seeds, not on training.
    let mut tasks: Vec<FoldTask> = Vec::new();
    for (si, &seed) in spec.seeds.iter().enumerate() {
        let folds = block_folds(urg, spec.folds, spec.block, derive_seed(seed, 0xF01D));
        for (fi, (train, test)) in train_test_pairs(&folds).into_iter().enumerate() {
            let train = if spec.label_ratio < 1.0 {
                let mut rng = seeded_rng(derive_seed(seed, 0x3A5C + fi as u64));
                mask_ratio(urg, &train, spec.label_ratio, &mut rng)
            } else {
                train
            };
            let model_seed = derive_seed(seed, (si * spec.folds + fi) as u64);
            tasks.push(FoldTask {
                si,
                fi,
                model_seed,
                train,
                test,
            });
        }
    }

    let results = par::run_tasks(tasks.len(), |t| {
        let task = &tasks[t];
        let seed_f = task.si as f64;
        let fold_f = task.fi as f64;
        let mut det = builder(task.model_seed, urg);
        let tf = Instant::now();
        let report = {
            let _s = uvd_obs::span("eval.fit")
                .field("seed", seed_f)
                .field("fold", fold_f);
            det.fit(urg, &task.train)
        };
        let fit_sec = tf.elapsed().as_secs_f64();
        if let Some(err) = report.error {
            return Err(UnitError::Fit(err));
        }
        let t0 = Instant::now();
        let scores = {
            let _s = uvd_obs::span("eval.predict")
                .field("seed", seed_f)
                .field("fold", fold_f);
            det.predict(urg)
        };
        let infer_sec = t0.elapsed().as_secs_f64();
        let te = Instant::now();
        let _es = uvd_obs::span("eval.evaluate")
            .field("seed", seed_f)
            .field("fold", fold_f);
        // Predict-stage gate: non-finite scores on the rows we are about to
        // rank are attributed to the detector, not to the metric.
        let test_scores: Vec<f32> = task
            .test
            .iter()
            .map(|&i| scores[urg.labeled[i] as usize])
            .collect();
        let bad = test_scores.iter().filter(|s| !s.is_finite()).count();
        if bad > 0 {
            let index = test_scores.iter().position(|s| !s.is_finite()).unwrap_or(0);
            return Err(UnitError::Predict { index, count: bad });
        }
        let (a, prfs) =
            eval_scores(&scores, urg, &task.test, &spec.ps).map_err(UnitError::Evaluate)?;
        Ok(FoldMeasure {
            si: task.si,
            auc: a,
            prfs,
            epoch_sec: report.secs_per_epoch(),
            fit_sec,
            infer_sec,
            eval_sec: te.elapsed().as_secs_f64(),
            model_mb: det.num_params() as f64 * 4.0 / 1.0e6,
        })
    });

    // Serialization boundary: typed per-unit results become the outcome
    // trail, and survivors feed the aggregates.
    let mut fold_outcomes = Vec::with_capacity(results.len());
    let mut measures: Vec<&FoldMeasure> = Vec::new();
    for (task, result) in tasks.iter().zip(results.iter()) {
        match result {
            Ok(m) => {
                fold_outcomes.push(FoldOutcome::Ok {
                    seed_index: task.si,
                    fold: task.fi,
                    auc: m.auc,
                });
                measures.push(m);
            }
            Err(err) => {
                eprintln!(
                    "[{label}] seed {} fold {}: {} stage failed: {err}",
                    task.si,
                    task.fi,
                    err.stage()
                );
                fold_outcomes.push(FoldOutcome::Failed {
                    seed_index: task.si,
                    fold: task.fi,
                    stage: err.stage(),
                    error: err.to_string(),
                });
            }
        }
    }
    let failed = fold_outcomes.iter().filter(|o| o.is_failed()).count();
    if measures.is_empty() {
        return Err(RunError {
            method: label.to_string(),
            city: urg.name.clone(),
            failures: fold_outcomes,
        });
    }

    // Per-seed averages over surviving folds (the paper reports mean/SD over
    // runs). A seed whose folds all failed contributes no run sample.
    let mut auc_runs = Vec::new();
    let mut prf_runs: Vec<Vec<(usize, Prf)>> = Vec::new();
    let mut epoch_secs = Vec::new();
    let mut fit_secs = Vec::new();
    let mut infer_secs = Vec::new();
    let mut eval_secs = Vec::new();
    let mut model_mb = 0.0f64;
    let runs = measures.len();

    for (si, _) in spec.seeds.iter().enumerate() {
        let fold_outs: Vec<&&FoldMeasure> = measures.iter().filter(|o| o.si == si).collect();
        if fold_outs.is_empty() {
            continue;
        }
        for o in &fold_outs {
            epoch_secs.push(o.epoch_sec);
            fit_secs.push(o.fit_sec);
            infer_secs.push(o.infer_sec);
            eval_secs.push(o.eval_sec);
            model_mb = o.model_mb;
        }
        // Average surviving folds into one run value.
        auc_runs.push(fold_outs.iter().map(|o| o.auc).sum::<f64>() / fold_outs.len() as f64);
        let mut per_p = Vec::new();
        for (pi, &p) in spec.ps.iter().enumerate() {
            let mean = |f: &dyn Fn(&Prf) -> f64| {
                fold_outs.iter().map(|o| f(&o.prfs[pi].1)).sum::<f64>() / fold_outs.len() as f64
            };
            per_p.push((
                p,
                Prf {
                    precision: mean(&|x| x.precision),
                    recall: mean(&|x| x.recall),
                    f1: mean(&|x| x.f1),
                },
            ));
        }
        prf_runs.push(per_p);
    }

    let at_p = spec
        .ps
        .iter()
        .enumerate()
        .map(|(pi, &p)| PSummary {
            p,
            recall: MeanStd::from_samples(
                &prf_runs.iter().map(|r| r[pi].1.recall).collect::<Vec<_>>(),
            ),
            precision: MeanStd::from_samples(
                &prf_runs
                    .iter()
                    .map(|r| r[pi].1.precision)
                    .collect::<Vec<_>>(),
            ),
            f1: MeanStd::from_samples(&prf_runs.iter().map(|r| r[pi].1.f1).collect::<Vec<_>>()),
        })
        .collect();

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let summary = MethodSummary {
        method: label.to_string(),
        city: urg.name.clone(),
        auc: MeanStd::from_samples(&auc_runs),
        at_p,
        train_secs_per_epoch: mean(&epoch_secs),
        fit_secs: mean(&fit_secs),
        inference_secs: mean(&infer_secs),
        evaluate_secs: mean(&eval_secs),
        model_mbytes: model_mb,
        runs,
        failed,
        fold_outcomes,
    };
    // Push buffered trace output (span records land as they close; counter
    // snapshots only at flush). No-op when tracing is off.
    uvd_obs::flush();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn tiny_urg() -> Urg {
        let city = City::from_config(CityPreset::tiny(), 1);
        Urg::build(&city, UrgOptions::default())
    }

    #[test]
    fn eval_scores_respects_test_subset() {
        let urg = tiny_urg();
        // Oracle scores: the true labels — AUC must be 1 on any subset.
        let mut scores = vec![0.0f32; urg.n];
        for (i, &r) in urg.labeled.iter().enumerate() {
            scores[r as usize] = urg.y[i];
        }
        let test: Vec<usize> = (0..urg.labeled.len()).step_by(2).collect();
        let (a, prfs) = eval_scores(&scores, &urg, &test, &[5]).expect("finite oracle scores");
        assert!((a - 1.0).abs() < 1e-9);
        assert!(prfs[0].1.precision > 0.99);
    }

    #[test]
    fn eval_scores_rejects_non_finite_test_scores() {
        let urg = tiny_urg();
        let scores = vec![f32::NAN; urg.n];
        let test: Vec<usize> = (0..urg.labeled.len()).collect();
        assert!(eval_scores(&scores, &urg, &test, &[5]).is_err());
    }

    #[test]
    fn run_method_produces_summary() {
        let urg = tiny_urg();
        let spec = RunSpec {
            folds: 2,
            seeds: vec![0],
            quick: true,
            ..Default::default()
        };
        let s = run_method(MethodKind::Mlp, &urg, &spec).expect("clean run");
        assert_eq!(s.method, "MLP");
        assert_eq!(s.runs, 2);
        assert_eq!(s.failed, 0);
        assert_eq!(s.fold_outcomes.len(), 2);
        assert!(s.fold_outcomes.iter().all(|o| !o.is_failed()));
        assert!(s.auc.mean > 0.0 && s.auc.mean <= 1.0);
        assert_eq!(s.at_p.len(), 2);
        assert!(s.model_mbytes > 0.0);
    }

    #[test]
    fn label_ratio_runs() {
        let urg = tiny_urg();
        let spec = RunSpec {
            folds: 2,
            seeds: vec![0],
            quick: true,
            label_ratio: 0.3,
            ..Default::default()
        };
        let s = run_method(MethodKind::Mlp, &urg, &spec).expect("clean run");
        assert!(s.auc.mean.is_finite());
    }
}
