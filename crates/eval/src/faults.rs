//! Fault injection for the evaluation pipeline: a [`Detector`] wrapper that
//! corrupts a stage on demand, used to exercise the runner's per-fold
//! graceful degradation (see `tests/fault_injection.rs`). Lives in the
//! library (not test-only) so examples and future chaos harnesses can reuse
//! it.

use uvd_urg::{Detector, FitError, FitReport, Urg};

/// Which corruption a [`FaultyDetector`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Pass everything through untouched (control).
    None,
    /// `fit` reports a typed [`FitError::NonFiniteLoss`] without training.
    FitNonFiniteLoss,
    /// `predict` replaces every score with NaN.
    NanScores,
    /// `predict` replaces every score with `+inf`.
    InfScores,
}

/// Wraps an inner detector and injects the configured [`Fault`]; all other
/// behaviour (name, parameter count, untouched stages) delegates to the
/// inner detector.
pub struct FaultyDetector {
    inner: Box<dyn Detector>,
    fault: Fault,
}

impl FaultyDetector {
    pub fn new(inner: Box<dyn Detector>, fault: Fault) -> Self {
        FaultyDetector { inner, fault }
    }
}

impl Detector for FaultyDetector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        if self.fault == Fault::FitNonFiniteLoss {
            return FitReport {
                final_loss: f32::NAN,
                error: Some(FitError::NonFiniteLoss),
                ..FitReport::default()
            };
        }
        self.inner.fit(urg, train_idx)
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        match self.fault {
            Fault::NanScores => vec![f32::NAN; urg.n],
            Fault::InfScores => vec![f32::INFINITY; urg.n],
            _ => self.inner.predict(urg),
        }
    }

    fn num_params(&self) -> usize {
        self.inner.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_detector, MethodKind};
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn tiny_urg() -> Urg {
        let city = City::from_config(CityPreset::tiny(), 1);
        Urg::build(&city, UrgOptions::default())
    }

    #[test]
    fn nan_fault_corrupts_scores_only() {
        let urg = tiny_urg();
        let inner = build_detector(MethodKind::Mlp, &urg, 0, true);
        let mut det = FaultyDetector::new(inner, Fault::NanScores);
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let report = det.fit(&urg, &train);
        assert!(report.error.is_none(), "fit stage untouched");
        assert!(det.predict(&urg).iter().all(|s| s.is_nan()));
    }

    #[test]
    fn fit_fault_reports_typed_error() {
        let urg = tiny_urg();
        let inner = build_detector(MethodKind::Mlp, &urg, 0, true);
        let mut det = FaultyDetector::new(inner, Fault::FitNonFiniteLoss);
        let report = det.fit(&urg, &[0, 1]);
        assert_eq!(report.error, Some(FitError::NonFiniteLoss));
    }

    #[test]
    fn control_fault_passes_through() {
        let urg = tiny_urg();
        let inner = build_detector(MethodKind::Mlp, &urg, 0, true);
        let mut det = FaultyDetector::new(inner, Fault::None);
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        det.fit(&urg, &train);
        assert!(det.predict(&urg).iter().all(|s| s.is_finite()));
        assert!(det.num_params() > 0);
    }
}
