//! # uvd-eval
//!
//! Evaluation harness: metrics (AUC, top-p% Recall/Precision/F1), coarse
//! block-level cross-validation splits, label-ratio masks, the experiment
//! runner aggregating mean ± SD across seeds, detector factory, and
//! serializable result records.

pub mod cities;
pub mod factory;
pub mod faults;
pub mod metrics;
pub mod records;
pub mod runner;
pub mod screening;
pub mod splits;
pub mod taskrun;

pub use cities::{dataset_city, dataset_seed, dataset_urg};
pub use factory::{build_detector, MethodKind};
pub use faults::{Fault, FaultyDetector};
pub use metrics::{auc, multiclass_accuracy, prf_at_top_percent, rmse, MetricError, Prf};
pub use records::{
    DatasetRow, ExperimentRecord, FoldOutcome, FoldStage, MeanStd, MethodSummary, PSummary,
};
pub use runner::{eval_scores, run_custom, run_method, RunError, RunSpec};
pub use screening::{cluster_candidates, rank_regions, short_list, Candidate};
pub use splits::{block_folds, mask_ratio, train_test_pairs};
pub use taskrun::{run_task_suite, TaskRow};
