//! Deployment-side screening utilities: turn region probabilities into the
//! ranked candidate short-list a city manager would hand to a survey team
//! (the paper's practical application setting, Section VI-C).

use uvd_urg::Urg;

/// One screening candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    pub region: u32,
    pub probability: f32,
    /// Grid coordinates, for field maps.
    pub x: usize,
    pub y: usize,
    /// Whether the region already carries a survey label.
    pub already_labeled: bool,
}

/// Rank all regions by detection probability (descending, ties broken by
/// region id for determinism). NaN-safe: corrupted (NaN) probabilities sink
/// to the bottom of the list instead of panicking the sort.
pub fn rank_regions(urg: &Urg, probs: &[f32]) -> Vec<Candidate> {
    assert_eq!(probs.len(), urg.n, "one probability per region");
    let labeled: std::collections::HashSet<u32> = urg.labeled.iter().copied().collect();
    let mut out: Vec<Candidate> = (0..urg.n)
        .map(|r| Candidate {
            region: r as u32,
            probability: probs[r],
            x: r % urg.width,
            y: r / urg.width,
            already_labeled: labeled.contains(&(r as u32)),
        })
        .collect();
    out.sort_by(|a, b| {
        a.probability
            .is_nan()
            .cmp(&b.probability.is_nan())
            .then(b.probability.total_cmp(&a.probability))
            .then(a.region.cmp(&b.region))
    });
    out
}

/// The top-p% screening short-list over *unlabeled* regions — the candidates
/// actually worth a site visit (labeled regions are already known).
pub fn short_list(urg: &Urg, probs: &[f32], p_percent: f64) -> Vec<Candidate> {
    let ranked = rank_regions(urg, probs);
    let unlabeled: Vec<Candidate> = ranked.into_iter().filter(|c| !c.already_labeled).collect();
    let k = ((unlabeled.len() as f64 * p_percent / 100.0).ceil() as usize)
        .clamp(1, unlabeled.len().max(1));
    unlabeled.into_iter().take(k).collect()
}

/// Group a candidate list into 8-connected spatial clusters — detected UV
/// patches rather than isolated cells (Figure 7's "correlated UVs detected
/// together"). Returns clusters sorted by size (largest first).
pub fn cluster_candidates(urg: &Urg, candidates: &[Candidate]) -> Vec<Vec<u32>> {
    let set: std::collections::HashSet<u32> = candidates.iter().map(|c| c.region).collect();
    let mut seen: std::collections::HashSet<u32> = Default::default();
    let mut clusters = Vec::new();
    for c in candidates {
        if seen.contains(&c.region) {
            continue;
        }
        let mut cluster = Vec::new();
        let mut stack = vec![c.region];
        seen.insert(c.region);
        while let Some(r) = stack.pop() {
            cluster.push(r);
            let (x, y) = (
                (r as usize % urg.width) as i64,
                (r as usize / urg.width) as i64,
            );
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (x + dx, y + dy);
                    if nx < 0 || ny < 0 || nx >= urg.width as i64 || ny >= urg.height as i64 {
                        continue;
                    }
                    let q = (ny as usize * urg.width + nx as usize) as u32;
                    if set.contains(&q) && seen.insert(q) {
                        stack.push(q);
                    }
                }
            }
        }
        cluster.sort_unstable();
        clusters.push(cluster);
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn urg() -> Urg {
        let city = City::from_config(CityPreset::tiny(), 61);
        Urg::build(&city, UrgOptions::no_image())
    }

    #[test]
    fn rank_regions_is_descending_and_deterministic() {
        let u = urg();
        let probs: Vec<f32> = (0..u.n).map(|r| ((r * 37) % 101) as f32 / 101.0).collect();
        let ranked = rank_regions(&u, &probs);
        assert_eq!(ranked.len(), u.n);
        for w in ranked.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
        assert_eq!(ranked, rank_regions(&u, &probs));
    }

    #[test]
    fn rank_regions_sinks_nan_probabilities() {
        let u = urg();
        let mut probs: Vec<f32> = (0..u.n).map(|r| r as f32 / u.n as f32).collect();
        probs[0] = f32::NAN;
        probs[3] = f32::NAN;
        let ranked = rank_regions(&u, &probs);
        assert_eq!(ranked.len(), u.n);
        // The two NaN regions are last, in region order.
        assert!(ranked[u.n - 2].probability.is_nan());
        assert!(ranked[u.n - 1].probability.is_nan());
        assert_eq!(ranked[u.n - 2].region, 0);
        assert_eq!(ranked[u.n - 1].region, 3);
    }

    #[test]
    fn short_list_excludes_labeled_regions() {
        let u = urg();
        let probs = vec![0.5f32; u.n];
        let list = short_list(&u, &probs, 5.0);
        assert!(!list.is_empty());
        assert!(list.iter().all(|c| !c.already_labeled));
    }

    #[test]
    fn short_list_size_tracks_percentage() {
        let u = urg();
        let probs: Vec<f32> = (0..u.n).map(|r| r as f32 / u.n as f32).collect();
        let l3 = short_list(&u, &probs, 3.0);
        let l10 = short_list(&u, &probs, 10.0);
        assert!(l10.len() > l3.len());
    }

    #[test]
    fn cluster_candidates_groups_adjacent_cells() {
        let u = urg();
        // Candidates: an L-shaped triple near the origin and one far cell.
        let make = |r: u32| Candidate {
            region: r,
            probability: 1.0,
            x: r as usize % u.width,
            y: r as usize / u.width,
            already_labeled: false,
        };
        let w = u.width as u32;
        let candidates = vec![make(0), make(1), make(w), make(5 * w + 9)];
        let clusters = cluster_candidates(&u, &candidates);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, w]);
        assert_eq!(clusters[1], vec![5 * w + 9]);
    }

    #[test]
    fn cluster_candidates_empty_input() {
        let u = urg();
        assert!(cluster_candidates(&u, &[]).is_empty());
    }
}
