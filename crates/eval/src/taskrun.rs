//! Downstream-task evaluation over a frozen embedding store: the
//! "pretrain once, serve many tasks" measurement half. One exported
//! embedding matrix feeds the land-use classifier, the accessibility
//! regressor, and the mixture-based best-region search; the runner returns
//! one metrics row per task suitable for JSON result files.

use serde::{Deserialize, Serialize};

use crate::metrics::{multiclass_accuracy, rmse, MetricError};
use uvd_citysim::{land_use_classes, City};
use uvd_tasks::{
    accessibility_targets, best_region_search, AccessibilityHead, LandUseHead, SearchOptions,
    TaskHeadConfig,
};
use uvd_tensor::Matrix;
use uvd_urg::Urg;

/// One downstream-task result row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskRow {
    /// Task name: `landuse`, `access`, or `search`.
    pub task: String,
    /// Metric name: `accuracy`, `rmse`, or `entropy`.
    pub metric: String,
    /// Held-out metric value (`search` reports the mixture entropy of the
    /// winning region set; it has no train/test split).
    pub value: f64,
    /// Training rows used (0 for `search`).
    pub train_n: usize,
    /// Held-out rows scored (member count for `search`).
    pub test_n: usize,
}

/// Deterministic striped split over `n` regions: every `k`-th region is
/// held out. Stratification falls out of the generator's spatial layout —
/// stripes cut across districts, so both sides see every land-use class.
fn striped_split(n: usize, k: usize) -> (Vec<usize>, Vec<usize>) {
    let k = k.max(2);
    let (mut train, mut test) = (Vec::new(), Vec::new());
    for r in 0..n {
        if r % k == 0 {
            test.push(r);
        } else {
            train.push(r);
        }
    }
    (train, test)
}

/// Train and score all three downstream heads against one frozen embedding
/// matrix. `seed` perturbs only head initialization (the embeddings stay
/// frozen), so repeated calls measure head-training variance, not pretrain
/// variance.
pub fn run_task_suite(
    city: &City,
    urg: &Urg,
    emb: &Matrix,
    seed: u64,
) -> Result<Vec<TaskRow>, MetricError> {
    assert_eq!(emb.rows(), urg.n, "one embedding row per region");
    let cfg = TaskHeadConfig {
        seed,
        ..TaskHeadConfig::default()
    };
    let (train, test) = striped_split(urg.n, 4);
    let mut rows = Vec::with_capacity(3);

    let labels = land_use_classes(city);
    let mut lu = LandUseHead::new(emb.cols(), &cfg);
    lu.fit(emb, &labels, &train, &cfg);
    let pred = lu.predict(emb);
    let pred_test: Vec<u8> = test.iter().map(|&r| pred[r]).collect();
    let truth_test: Vec<u8> = test.iter().map(|&r| labels[r]).collect();
    rows.push(TaskRow {
        task: "landuse".into(),
        metric: "accuracy".into(),
        value: multiclass_accuracy(&pred_test, &truth_test)?,
        train_n: train.len(),
        test_n: test.len(),
    });

    let targets = accessibility_targets(city);
    let mut ac = AccessibilityHead::new(emb.cols(), &cfg);
    ac.fit(emb, &targets, &train, &cfg);
    let pred = ac.predict(emb);
    let pred_test: Vec<f32> = test.iter().map(|&r| pred[r]).collect();
    let truth_test: Vec<f32> = test.iter().map(|&r| targets[r]).collect();
    rows.push(TaskRow {
        task: "access".into(),
        metric: "rmse".into(),
        value: rmse(&pred_test, &truth_test)?,
        train_n: train.len(),
        test_n: test.len(),
    });

    let region = best_region_search(emb, city, urg, &SearchOptions::default());
    rows.push(TaskRow {
        task: "search".into(),
        metric: "entropy".into(),
        value: region.entropy,
        train_n: 0,
        test_n: region.members.len(),
    });

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmsf::{embedding_key, Cmsf, CmsfConfig};
    use uvd_citysim::CityPreset;
    use uvd_tasks::EmbeddingStore;
    use uvd_urg::{Detector, UrgOptions};

    #[test]
    fn striped_split_partitions_all_regions() {
        let (train, test) = striped_split(10, 4);
        assert_eq!(test, vec![0, 4, 8]);
        assert_eq!(train.len() + test.len(), 10);
        assert!(train.iter().all(|r| !test.contains(r)));
    }

    #[test]
    fn suite_produces_one_row_per_task() {
        let city = City::from_config(CityPreset::tiny(), 29);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 4;
        cfg.slave_epochs = 1;
        let mut model = Cmsf::new(&urg, cfg);
        model.fit(&urg, &train);
        let mut store = EmbeddingStore::new();
        model.export_embeddings(&urg, "tiny", &mut store);
        let emb = store.get(&embedding_key("tiny")).unwrap();

        let rows = run_task_suite(&city, &urg, emb, 5).expect("suite");
        let names: Vec<&str> = rows.iter().map(|r| r.task.as_str()).collect();
        assert_eq!(names, ["landuse", "access", "search"]);
        for row in &rows {
            assert!(row.value.is_finite(), "{} metric must be finite", row.task);
            assert!(row.value >= 0.0);
        }
        assert!(rows[0].value <= 1.0, "accuracy is a fraction");
        assert!(rows[2].test_n >= 1, "search returns at least the seed");

        // Same store, same seed → identical rows (everything downstream of
        // the frozen embeddings is deterministic).
        let again = run_task_suite(&city, &urg, emb, 5).expect("suite rerun");
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }
}
