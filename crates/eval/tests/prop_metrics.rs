//! Property-based tests of the evaluation metrics.

use proptest::prelude::*;
use uvd_eval::{auc, prf_at_top_percent};

fn scores_and_labels() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    proptest::collection::vec((0.0f32..1.0, prop::bool::ANY), 2..60).prop_map(|v| {
        let scores: Vec<f32> = v.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = v.iter().map(|(_, y)| if *y { 1.0 } else { 0.0 }).collect();
        (scores, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AUC is always in [0, 1].
    #[test]
    fn auc_bounded((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// AUC is invariant to strictly monotone transformations of the scores.
    #[test]
    fn auc_rank_invariant((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let b = auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Flipping the labels mirrors the AUC around 0.5.
    #[test]
    fn auc_label_flip_symmetry((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        let flipped: Vec<f32> = labels.iter().map(|&y| 1.0 - y).collect();
        let b = auc(&scores, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    /// Negating the scores mirrors the AUC around 0.5.
    #[test]
    fn auc_score_flip_symmetry((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        let negated: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let b = auc(&negated, &labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    /// Screening metrics are bounded, and recall grows (weakly) with p.
    #[test]
    fn prf_bounded_and_recall_monotone((scores, labels) in scores_and_labels()) {
        let mut last_recall = 0.0f64;
        for p in [1usize, 5, 10, 25, 50, 100] {
            let prf = prf_at_top_percent(&scores, &labels, p);
            prop_assert!((0.0..=1.0).contains(&prf.precision));
            prop_assert!((0.0..=1.0).contains(&prf.recall));
            prop_assert!((0.0..=1.0).contains(&prf.f1));
            prop_assert!(prf.recall + 1e-9 >= last_recall, "recall must not shrink with p");
            last_recall = prf.recall;
        }
    }

    /// F1 is the harmonic mean of precision and recall whenever both exist.
    #[test]
    fn f1_is_harmonic_mean((scores, labels) in scores_and_labels(), p in 1usize..100) {
        let prf = prf_at_top_percent(&scores, &labels, p);
        if prf.precision + prf.recall > 0.0 {
            let expect = 2.0 * prf.precision * prf.recall / (prf.precision + prf.recall);
            prop_assert!((prf.f1 - expect).abs() < 1e-9);
        } else {
            prop_assert_eq!(prf.f1, 0.0);
        }
    }

    /// At p = 100 every item is predicted positive: recall is 1 whenever any
    /// positive exists, and precision equals the base rate.
    #[test]
    fn prf_at_100_percent((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
        let prf = prf_at_top_percent(&scores, &labels, 100);
        if n_pos > 0 {
            prop_assert!((prf.recall - 1.0).abs() < 1e-9);
            let base = n_pos as f64 / labels.len() as f64;
            prop_assert!((prf.precision - base).abs() < 1e-9);
        }
    }
}
