//! Property-based tests of the evaluation metrics.

// The f1 == 0.0 check below is exact by design: the metric assigns the
// literal 0.0 when precision + recall is zero.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use uvd_eval::{auc, prf_at_top_percent, MetricError};

fn scores_and_labels() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    proptest::collection::vec((0.0f32..1.0, prop::bool::ANY), 2..60).prop_map(|v| {
        let scores: Vec<f32> = v.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = v.iter().map(|(_, y)| if *y { 1.0 } else { 0.0 }).collect();
        (scores, labels)
    })
}

/// Scores drawn from the full f32 bit space — including NaN, ±inf, subnormals
/// — paired with clean labels. The metrics must never panic on these.
fn arbitrary_scores_and_labels() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    proptest::collection::vec((prop::num::f32::ANY, prop::bool::ANY), 2..60).prop_map(|v| {
        let scores: Vec<f32> = v.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = v.iter().map(|(_, y)| if *y { 1.0 } else { 0.0 }).collect();
        (scores, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AUC is always in [0, 1].
    #[test]
    fn auc_bounded((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels).expect("finite inputs");
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// AUC is invariant to strictly monotone transformations of the scores.
    #[test]
    fn auc_rank_invariant((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels).expect("finite inputs");
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let b = auc(&transformed, &labels).expect("monotone transform stays finite");
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Flipping the labels mirrors the AUC around 0.5.
    #[test]
    fn auc_label_flip_symmetry((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels).expect("finite inputs");
        let flipped: Vec<f32> = labels.iter().map(|&y| 1.0 - y).collect();
        let b = auc(&scores, &flipped).expect("finite inputs");
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    /// Negating the scores mirrors the AUC around 0.5.
    #[test]
    fn auc_score_flip_symmetry((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels).expect("finite inputs");
        let negated: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let b = auc(&negated, &labels).expect("finite inputs");
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    /// Screening metrics are bounded, and recall grows (weakly) with p.
    #[test]
    fn prf_bounded_and_recall_monotone((scores, labels) in scores_and_labels()) {
        let mut last_recall = 0.0f64;
        for p in [1usize, 5, 10, 25, 50, 100] {
            let prf = prf_at_top_percent(&scores, &labels, p).expect("finite inputs");
            prop_assert!((0.0..=1.0).contains(&prf.precision));
            prop_assert!((0.0..=1.0).contains(&prf.recall));
            prop_assert!((0.0..=1.0).contains(&prf.f1));
            prop_assert!(prf.recall + 1e-9 >= last_recall, "recall must not shrink with p");
            last_recall = prf.recall;
        }
    }

    /// F1 is the harmonic mean of precision and recall whenever both exist.
    #[test]
    fn f1_is_harmonic_mean((scores, labels) in scores_and_labels(), p in 1usize..100) {
        let prf = prf_at_top_percent(&scores, &labels, p).expect("finite inputs");
        if prf.precision + prf.recall > 0.0 {
            let expect = 2.0 * prf.precision * prf.recall / (prf.precision + prf.recall);
            prop_assert!((prf.f1 - expect).abs() < 1e-9);
        } else {
            prop_assert_eq!(prf.f1, 0.0);
        }
    }

    /// At p = 100 every item is predicted positive: recall is 1 whenever any
    /// positive exists, and precision equals the base rate.
    #[test]
    fn prf_at_100_percent((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
        let prf = prf_at_top_percent(&scores, &labels, 100).expect("finite inputs");
        if n_pos > 0 {
            prop_assert!((prf.recall - 1.0).abs() < 1e-9);
            let base = n_pos as f64 / labels.len() as f64;
            prop_assert!((prf.precision - base).abs() < 1e-9);
        }
    }

    /// On arbitrary f32 bit patterns (NaN, ±inf included) the metrics never
    /// panic: they either succeed (all-finite input) or return a typed error
    /// pointing at the first offending index.
    #[test]
    fn auc_never_panics_on_arbitrary_scores((scores, labels) in arbitrary_scores_and_labels()) {
        let n_bad = scores.iter().filter(|s| !s.is_finite()).count();
        match auc(&scores, &labels) {
            Ok(a) => {
                prop_assert_eq!(n_bad, 0, "non-finite input must not pass");
                prop_assert!((0.0..=1.0).contains(&a));
            }
            Err(MetricError::NonFiniteScore { index, count }) => {
                prop_assert_eq!(count, n_bad);
                prop_assert!(!scores[index].is_finite());
                prop_assert!(scores[..index].iter().all(|s| s.is_finite()),
                    "index must point at the first offender");
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// Same contract for the screening metrics.
    #[test]
    fn prf_never_panics_on_arbitrary_scores(
        (scores, labels) in arbitrary_scores_and_labels(),
        p in 1usize..100,
    ) {
        let n_bad = scores.iter().filter(|s| !s.is_finite()).count();
        match prf_at_top_percent(&scores, &labels, p) {
            Ok(prf) => {
                prop_assert_eq!(n_bad, 0, "non-finite input must not pass");
                prop_assert!((0.0..=1.0).contains(&prf.f1));
            }
            Err(MetricError::NonFiniteScore { count, .. }) => {
                prop_assert_eq!(count, n_bad);
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// Non-finite labels are rejected too, after the score check.
    #[test]
    fn auc_rejects_non_finite_labels((scores, mut labels) in scores_and_labels(), at in 0usize..60) {
        let at = at % labels.len();
        labels[at] = f32::NAN;
        match auc(&scores, &labels) {
            Err(MetricError::NonFiniteLabel { index }) => prop_assert_eq!(index, at),
            other => prop_assert!(false, "expected NonFiniteLabel, got {other:?}"),
        }
    }
}
