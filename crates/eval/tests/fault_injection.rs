//! Acceptance tests for per-fold graceful degradation: inject faults into
//! individual (seed, fold) units and check the runner records them as typed
//! [`FoldOutcome::Failed`] entries, aggregates the survivors, and only errors
//! when every unit fails.

use uvd_citysim::{City, CityPreset};
use uvd_eval::{
    build_detector, run_custom, Fault, FaultyDetector, FoldOutcome, FoldStage, MethodKind, RunSpec,
};
use uvd_tensor::init::derive_seed;
use uvd_urg::{Urg, UrgOptions};

fn tiny_urg() -> Urg {
    let city = City::from_config(CityPreset::tiny(), 1);
    Urg::build(&city, UrgOptions::default())
}

fn spec() -> RunSpec {
    RunSpec {
        folds: 2,
        seeds: vec![0, 1],
        quick: true,
        ..Default::default()
    }
}

/// The model seed `run_custom` derives for (seed index 0, fold 0) with the
/// spec above — seed 0, unit index 0.
fn first_unit_seed() -> u64 {
    derive_seed(0, 0)
}

#[test]
fn nan_scores_in_one_unit_degrade_gracefully() {
    let urg = tiny_urg();
    let spec = spec();
    let target = first_unit_seed();
    let summary = run_custom(&urg, &spec, "MLP+fault", |seed, urg| {
        let inner = build_detector(MethodKind::Mlp, urg, seed, true);
        let fault = if seed == target {
            Fault::NanScores
        } else {
            Fault::None
        };
        Box::new(FaultyDetector::new(inner, fault))
    })
    .expect("one bad unit must not abort the run");

    let total = spec.seeds.len() * spec.folds;
    assert_eq!(summary.fold_outcomes.len(), total);
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.runs, total - 1, "survivors aggregate");

    // Exactly the targeted unit failed, at the predict stage.
    let failures: Vec<&FoldOutcome> = summary.failures().collect();
    assert_eq!(failures.len(), 1);
    match failures[0] {
        FoldOutcome::Failed {
            seed_index,
            fold,
            stage,
            error,
        } => {
            assert_eq!(*seed_index, 0);
            assert_eq!(*fold, 0);
            assert_eq!(*stage, FoldStage::Predict);
            assert!(
                error.contains("non-finite"),
                "error message should name the problem: {error}"
            );
        }
        other => panic!("expected a Failed outcome, got {other:?}"),
    }

    // The survivors still produce finite aggregates.
    assert!(summary.auc.mean.is_finite());
    assert!(summary.auc.mean > 0.0 && summary.auc.mean <= 1.0);
}

#[test]
fn inf_scores_are_caught_like_nan() {
    let urg = tiny_urg();
    let spec = spec();
    let target = first_unit_seed();
    let summary = run_custom(&urg, &spec, "MLP+inf", |seed, urg| {
        let inner = build_detector(MethodKind::Mlp, urg, seed, true);
        let fault = if seed == target {
            Fault::InfScores
        } else {
            Fault::None
        };
        Box::new(FaultyDetector::new(inner, fault))
    })
    .expect("one bad unit must not abort the run");
    assert_eq!(summary.failed, 1);
    assert!(matches!(
        summary.failures().next(),
        Some(FoldOutcome::Failed {
            stage: FoldStage::Predict,
            ..
        })
    ));
}

#[test]
fn fit_failure_is_attributed_to_the_fit_stage() {
    let urg = tiny_urg();
    let spec = spec();
    let target = first_unit_seed();
    let summary = run_custom(&urg, &spec, "MLP+fitfault", |seed, urg| {
        let inner = build_detector(MethodKind::Mlp, urg, seed, true);
        let fault = if seed == target {
            Fault::FitNonFiniteLoss
        } else {
            Fault::None
        };
        Box::new(FaultyDetector::new(inner, fault))
    })
    .expect("one bad unit must not abort the run");
    assert_eq!(summary.failed, 1);
    match summary.failures().next() {
        Some(FoldOutcome::Failed { stage, error, .. }) => {
            assert_eq!(*stage, FoldStage::Fit);
            assert!(error.contains("non-finite"), "fit error message: {error}");
        }
        other => panic!("expected a fit-stage failure, got {other:?}"),
    };
}

#[test]
fn all_units_failing_is_a_run_error() {
    let urg = tiny_urg();
    let spec = spec();
    let err = run_custom(&urg, &spec, "MLP+allfail", |seed, urg| {
        let inner = build_detector(MethodKind::Mlp, urg, seed, true);
        Box::new(FaultyDetector::new(inner, Fault::NanScores))
    })
    .expect_err("nothing to aggregate");
    assert_eq!(err.failures.len(), spec.seeds.len() * spec.folds);
    assert!(err.failures.iter().all(|o| o.is_failed()));
    let msg = err.to_string();
    assert!(msg.contains("all 4"), "display names the unit count: {msg}");
    assert!(msg.contains("predict"), "display names the stage: {msg}");
}

#[test]
fn clean_run_has_empty_failure_trail() {
    let urg = tiny_urg();
    let spec = spec();
    let summary = run_custom(&urg, &spec, "MLP+control", |seed, urg| {
        let inner = build_detector(MethodKind::Mlp, urg, seed, true);
        Box::new(FaultyDetector::new(inner, Fault::None))
    })
    .expect("control run is clean");
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.runs, spec.seeds.len() * spec.folds);
    assert!(summary.failures().next().is_none());
}
