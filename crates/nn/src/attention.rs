//! Graph attention primitives: single heads (intra- and cross-modal),
//! multi-head wrappers, and the learned two-way fusion used for the paper's
//! AGG(·,·) operator.

use crate::layers::Activation;
use std::sync::Arc;
use uvd_tensor::init::glorot_uniform;
use uvd_tensor::{EdgeIndex, Graph, NodeId, ParamRef, ParamSet, Rng64};

/// One graph attention head.
///
/// For intra-modal attention (paper eqs. 1–3) destination and source share
/// the transformation `W`; for cross-modal attention (eqs. 5–7) they use
/// separate `W'` matrices and the aggregated messages come from the *source*
/// modality. Scores follow the standard GAT decomposition
/// `a^T [h_i ⊕ h_j] = a_dst^T h_i + a_src^T h_j` with LeakyReLU.
#[derive(Clone, Debug)]
pub struct GraphAttentionHead {
    w_dst: ParamRef,
    /// `None` means the source shares `w_dst` (intra-modal).
    w_src: Option<ParamRef>,
    a_dst: ParamRef,
    a_src: ParamRef,
    pub negative_slope: f32,
    pub activation: Activation,
}

impl GraphAttentionHead {
    /// Intra-modal head: shared transformation for both endpoints.
    pub fn new_intra(name: &str, in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        GraphAttentionHead {
            w_dst: ParamRef::new(format!("{name}.w"), glorot_uniform(in_dim, out_dim, rng)),
            w_src: None,
            a_dst: ParamRef::new(format!("{name}.a_dst"), glorot_uniform(out_dim, 1, rng)),
            a_src: ParamRef::new(format!("{name}.a_src"), glorot_uniform(out_dim, 1, rng)),
            negative_slope: 0.2,
            activation: Activation::LeakyRelu(0.2),
        }
    }

    /// Cross-modal head: destination modality has `in_dst` dims, source
    /// modality `in_src`; messages are transformed source features.
    pub fn new_cross(
        name: &str,
        in_dst: usize,
        in_src: usize,
        out_dim: usize,
        rng: &mut Rng64,
    ) -> Self {
        GraphAttentionHead {
            w_dst: ParamRef::new(
                format!("{name}.w_dst"),
                glorot_uniform(in_dst, out_dim, rng),
            ),
            w_src: Some(ParamRef::new(
                format!("{name}.w_src"),
                glorot_uniform(in_src, out_dim, rng),
            )),
            a_dst: ParamRef::new(format!("{name}.a_dst"), glorot_uniform(out_dim, 1, rng)),
            a_src: ParamRef::new(format!("{name}.a_src"), glorot_uniform(out_dim, 1, rng)),
            negative_slope: 0.2,
            activation: Activation::LeakyRelu(0.2),
        }
    }

    pub fn out_dim(&self) -> usize {
        self.w_dst.shape().1
    }

    /// Forward pass. `x_dst` provides the attending (center) features,
    /// `x_src` the attended (neighbour) features; for intra-modal attention
    /// pass the same node twice.
    pub fn forward(
        &self,
        g: &mut Graph,
        x_dst: NodeId,
        x_src: NodeId,
        edges: &Arc<EdgeIndex>,
    ) -> NodeId {
        let w_dst = g.param(&self.w_dst);
        let h_dst = g.matmul(x_dst, w_dst);
        let h_src = match &self.w_src {
            Some(w_src) => {
                let w = g.param(w_src);
                g.matmul(x_src, w)
            }
            None if x_src == x_dst => h_dst,
            None => g.matmul(x_src, w_dst),
        };
        let a_dst = g.param(&self.a_dst);
        let a_src = g.param(&self.a_src);
        let s_dst = g.matmul(h_dst, a_dst); // N×1
        let s_src = g.matmul(h_src, a_src); // N×1
        let dst_idx = Arc::new(edges.dst().to_vec());
        let src_idx = Arc::new(edges.src().to_vec());
        let s_d = g.gather_rows(s_dst, dst_idx);
        let s_s = g.gather_rows(s_src, src_idx);
        let scores = g.add(s_d, s_s);
        let scores = g.leaky_relu(scores, self.negative_slope);
        let alpha = g.edge_softmax(scores, edges.clone());
        let agg = g.edge_aggregate(alpha, h_src, edges.clone());
        self.activation.apply(g, agg)
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        set.track(self.w_dst.clone());
        if let Some(w) = &self.w_src {
            set.track(w.clone());
        }
        set.track(self.a_dst.clone());
        set.track(self.a_src.clone());
    }
}

/// Multi-head attention: heads run independently and outputs are
/// concatenated (standard GAT convention), so the output dimensionality is
/// `heads * out_dim`.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    pub heads: Vec<GraphAttentionHead>,
}

impl MultiHeadAttention {
    pub fn new_intra(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        n_heads: usize,
        rng: &mut Rng64,
    ) -> Self {
        let heads = (0..n_heads)
            .map(|h| GraphAttentionHead::new_intra(&format!("{name}.h{h}"), in_dim, out_dim, rng))
            .collect();
        MultiHeadAttention { heads }
    }

    pub fn new_cross(
        name: &str,
        in_dst: usize,
        in_src: usize,
        out_dim: usize,
        n_heads: usize,
        rng: &mut Rng64,
    ) -> Self {
        let heads = (0..n_heads)
            .map(|h| {
                GraphAttentionHead::new_cross(&format!("{name}.h{h}"), in_dst, in_src, out_dim, rng)
            })
            .collect();
        MultiHeadAttention { heads }
    }

    pub fn out_dim(&self) -> usize {
        self.heads.iter().map(|h| h.out_dim()).sum()
    }

    pub fn forward(
        &self,
        g: &mut Graph,
        x_dst: NodeId,
        x_src: NodeId,
        edges: &Arc<EdgeIndex>,
    ) -> NodeId {
        let mut out: Option<NodeId> = None;
        for head in &self.heads {
            let h = head.forward(g, x_dst, x_src, edges);
            out = Some(match out {
                None => h,
                Some(prev) => g.concat_cols(prev, h),
            });
        }
        out.expect("at least one head")
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        for h in &self.heads {
            h.collect_params(set);
        }
    }
}

/// Learned two-way fusion implementing the paper's `AGG(x, y)` options:
/// summation, concatenation, or a per-row attention gate
/// `softmax([x·a₁, y·a₂])` weighting the two inputs (requires equal dims for
/// `Sum`/`Attention`).
#[derive(Clone, Debug)]
pub enum FusionAgg {
    Sum,
    Concat,
    Attention { a1: ParamRef, a2: ParamRef },
}

/// Which fusion to build (configuration-level mirror of [`FusionAgg`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggMode {
    Sum,
    Concat,
    Attention,
}

impl FusionAgg {
    pub fn new(name: &str, mode: AggMode, dim: usize, rng: &mut Rng64) -> Self {
        match mode {
            AggMode::Sum => FusionAgg::Sum,
            AggMode::Concat => FusionAgg::Concat,
            AggMode::Attention => FusionAgg::Attention {
                a1: ParamRef::new(format!("{name}.a1"), glorot_uniform(dim, 1, rng)),
                a2: ParamRef::new(format!("{name}.a2"), glorot_uniform(dim, 1, rng)),
            },
        }
    }

    /// Output dimensionality given input dimensionality `dim`.
    pub fn out_dim(&self, dim: usize) -> usize {
        match self {
            FusionAgg::Concat => 2 * dim,
            _ => dim,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId, y: NodeId) -> NodeId {
        match self {
            FusionAgg::Sum => g.add(x, y),
            FusionAgg::Concat => g.concat_cols(x, y),
            FusionAgg::Attention { a1, a2 } => {
                let a1 = g.param(a1);
                let a2 = g.param(a2);
                let s1 = g.matmul(x, a1); // N×1
                let s2 = g.matmul(y, a2); // N×1
                let s = g.concat_cols(s1, s2); // N×2
                let w = g.softmax_rows(s, 1.0);
                let w1 = g.slice_cols(w, 0, 1);
                let w2 = g.slice_cols(w, 1, 2);
                let xg = g.mul_col(x, w1);
                let yg = g.mul_col(y, w2);
                g.add(xg, yg)
            }
        }
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        if let FusionAgg::Attention { a1, a2 } = self {
            set.track(a1.clone());
            set.track(a2.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_tensor::init::{normal_matrix, seeded_rng};
    use uvd_tensor::Matrix;

    fn small_edges() -> Arc<EdgeIndex> {
        // 4 nodes, bidirectional path + self-loops.
        let mut pairs = vec![(0u32, 1u32), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)];
        for i in 0..4 {
            pairs.push((i, i));
        }
        Arc::new(EdgeIndex::from_pairs(4, pairs))
    }

    #[test]
    fn intra_head_shapes_and_backward() {
        let mut rng = seeded_rng(1);
        let head = GraphAttentionHead::new_intra("h", 5, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(normal_matrix(4, 5, 0.0, 1.0, &mut rng));
        let edges = small_edges();
        let out = head.forward(&mut g, x, x, &edges);
        assert_eq!(g.value(out).shape(), (4, 3));
        let sq = g.mul(out, out);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads();
        let mut set = ParamSet::new();
        head.collect_params(&mut set);
        assert!(
            set.grad_norm() > 0.0,
            "gradients must reach attention params"
        );
    }

    #[test]
    fn cross_head_different_dims() {
        let mut rng = seeded_rng(2);
        let head = GraphAttentionHead::new_cross("c", 6, 4, 3, &mut rng);
        let mut g = Graph::new();
        let xp = g.constant(normal_matrix(4, 6, 0.0, 1.0, &mut rng));
        let xi = g.constant(normal_matrix(4, 4, 0.0, 1.0, &mut rng));
        let edges = small_edges();
        let out = head.forward(&mut g, xp, xi, &edges);
        assert_eq!(g.value(out).shape(), (4, 3));
    }

    #[test]
    fn multi_head_concatenates() {
        let mut rng = seeded_rng(3);
        let mh = MultiHeadAttention::new_intra("m", 5, 3, 2, &mut rng);
        assert_eq!(mh.out_dim(), 6);
        let mut g = Graph::new();
        let x = g.constant(normal_matrix(4, 5, 0.0, 1.0, &mut rng));
        let out = mh.forward(&mut g, x, x, &small_edges());
        assert_eq!(g.value(out).shape(), (4, 6));
    }

    #[test]
    fn fusion_sum_and_concat() {
        let mut rng = seeded_rng(4);
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = g.constant(Matrix::from_rows(&[&[3.0, 4.0]]));
        let sum = FusionAgg::new("f", AggMode::Sum, 2, &mut rng).forward(&mut g, x, y);
        assert_eq!(g.value(sum).as_slice(), &[4.0, 6.0]);
        let cat = FusionAgg::new("f", AggMode::Concat, 2, &mut rng).forward(&mut g, x, y);
        assert_eq!(g.value(cat).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fusion_attention_is_convex_combination() {
        let mut rng = seeded_rng(5);
        let f = FusionAgg::new("f", AggMode::Attention, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[1.0, 0.0]]));
        let y = g.constant(Matrix::from_rows(&[&[0.0, 1.0]]));
        let out = f.forward(&mut g, x, y);
        let v = g.value(out);
        // Each output element within [0,1]; elements sum to 1 here because
        // inputs are the two unit basis vectors.
        let s = v.get(0, 0) + v.get(0, 1);
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn isolated_node_keeps_self_loop_signal() {
        // A node with only a self-loop must aggregate its own features.
        let mut rng = seeded_rng(6);
        let head = GraphAttentionHead::new_intra("h", 2, 2, &mut rng);
        let edges = Arc::new(EdgeIndex::from_pairs(
            2,
            vec![(0, 0), (1, 1), (0, 1), (1, 0)],
        ));
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let out = head.forward(&mut g, x, x, &edges);
        // No NaNs and finite values.
        assert!(!g.value(out).has_non_finite());
    }
}
