//! # uvd-nn
//!
//! Reusable neural network layers on top of [`uvd_tensor`]: linear layers
//! and MLPs, graph attention heads (intra- and cross-modal, multi-head),
//! GCN layers with precomputed normalized adjacency, CNN blocks for the
//! image baselines, and the paper's `AGG(·,·)` fusion operator.

pub mod attention;
pub mod cnn;
pub mod gcn;
pub mod layers;

pub use attention::{AggMode, FusionAgg, GraphAttentionHead, MultiHeadAttention};
pub use cnn::{histogram_equalize, ConvBackbone, ConvBlock};
pub use gcn::{GcnLayer, GcnStack};
pub use layers::{Activation, Linear, Mlp};
