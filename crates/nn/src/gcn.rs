//! GCN layer (Kipf & Welling): `σ(Â X W)` with a precomputed, symmetrically
//! normalized adjacency `Â = D^{-1/2}(A + I)D^{-1/2}`.

use crate::layers::{Activation, Linear};
use std::sync::Arc;
use uvd_tensor::graph::CsrPair;
use uvd_tensor::{Graph, NodeId, ParamSet, Rng64};

/// One graph convolution layer.
#[derive(Clone, Debug)]
pub struct GcnLayer {
    pub linear: Linear,
    pub activation: Activation,
}

impl GcnLayer {
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut Rng64,
    ) -> Self {
        GcnLayer {
            linear: Linear::new(name, in_dim, out_dim, rng),
            activation,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId, adj: &Arc<CsrPair>) -> NodeId {
        let xw = self.linear.forward(g, x);
        let prop = g.spmm(adj.clone(), xw);
        self.activation.apply(g, prop)
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        self.linear.collect_params(set);
    }
}

/// A stack of GCN layers.
#[derive(Clone, Debug)]
pub struct GcnStack {
    pub layers: Vec<GcnLayer>,
}

impl GcnStack {
    /// `dims = [in, h1, ..., out]`; hidden layers get `activation`, the last
    /// layer is linear.
    pub fn new(name: &str, dims: &[usize], activation: Activation, rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2);
        let layers = (0..dims.len() - 1)
            .map(|i| {
                let act = if i + 2 < dims.len() {
                    activation
                } else {
                    Activation::Identity
                };
                GcnLayer::new(&format!("{name}.g{i}"), dims[i], dims[i + 1], act, rng)
            })
            .collect();
        GcnStack { layers }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId, adj: &Arc<CsrPair>) -> NodeId {
        let mut h = x;
        for l in &self.layers {
            h = l.forward(g, h, adj);
        }
        h
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        for l in &self.layers {
            l.collect_params(set);
        }
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").linear.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_tensor::init::{normal_matrix, seeded_rng};
    use uvd_tensor::{Csr, Matrix};

    fn path_adj(n: usize) -> Arc<CsrPair> {
        let mut coo = Vec::new();
        for i in 0..n as u32 {
            coo.push((i, i, 1.0));
            if i + 1 < n as u32 {
                coo.push((i, i + 1, 1.0));
                coo.push((i + 1, i, 1.0));
            }
        }
        CsrPair::new(Csr::from_coo(n, n, coo).sym_normalized())
    }

    #[test]
    fn gcn_layer_shapes() {
        let mut rng = seeded_rng(1);
        let l = GcnLayer::new("g", 4, 3, Activation::Relu, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(normal_matrix(5, 4, 0.0, 1.0, &mut rng));
        let y = l.forward(&mut g, x, &path_adj(5));
        assert_eq!(g.value(y).shape(), (5, 3));
    }

    #[test]
    fn gcn_propagates_information() {
        // With identity weights, a node's output depends on its neighbours.
        let mut rng = seeded_rng(2);
        let l = GcnLayer::new("g", 2, 2, Activation::Identity, &mut rng);
        *l.linear.w.value_mut() = Matrix::eye(2);
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0], &[0.0, 0.0]]));
        let y = l.forward(&mut g, x, &path_adj(3));
        // Node 1 receives mass from node 0.
        assert!(g.value(y).get(1, 0) > 0.0);
        // Node 2 does not (single hop).
        assert!(g.value(y).get(2, 0).abs() < 1e-6);
    }

    #[test]
    fn stack_dims_and_backward() {
        let mut rng = seeded_rng(3);
        let stack = GcnStack::new("s", &[4, 8, 2], Activation::Relu, &mut rng);
        assert_eq!(stack.out_dim(), 2);
        let mut g = Graph::new();
        let x = g.constant(normal_matrix(6, 4, 0.0, 1.0, &mut rng));
        let y = stack.forward(&mut g, x, &path_adj(6));
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads();
        let mut set = ParamSet::new();
        stack.collect_params(&mut set);
        assert!(set.grad_norm() > 0.0);
    }
}
