//! Basic trainable layers: linear maps, MLPs, and activation plumbing.

use uvd_tensor::init::glorot_uniform;
use uvd_tensor::{FusedAct, Graph, Matrix, NodeId, ParamRef, ParamSet, Rng64};

/// Activation functions used across the workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    Identity,
    Relu,
    /// LeakyReLU with the given negative slope (paper uses 0.2-style slopes).
    LeakyRelu(f32),
    Tanh,
    Sigmoid,
}

impl Activation {
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu(s) => g.leaky_relu(x, s),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }

    /// The [`FusedAct`] equivalent, if this activation can ride inside a
    /// fused `matmul_bias_act` node. `LeakyRelu` fuses only for non-negative
    /// slopes: the fused backward recovers the mask from the output sign.
    pub fn as_fused(self) -> Option<FusedAct> {
        match self {
            Activation::Identity => Some(FusedAct::Identity),
            Activation::Relu => Some(FusedAct::LeakyRelu(0.0)),
            Activation::LeakyRelu(s) if s >= 0.0 => Some(FusedAct::LeakyRelu(s)),
            Activation::LeakyRelu(_) => None,
            Activation::Tanh => Some(FusedAct::Tanh),
            Activation::Sigmoid => Some(FusedAct::Sigmoid),
        }
    }
}

/// Fully connected layer `x W + b` with Glorot-initialized weights.
#[derive(Clone, Debug)]
pub struct Linear {
    pub w: ParamRef,
    pub b: Option<ParamRef>,
}

impl Linear {
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        Linear {
            w: ParamRef::new(format!("{name}.w"), glorot_uniform(in_dim, out_dim, rng)),
            b: Some(ParamRef::new(
                format!("{name}.b"),
                Matrix::zeros(1, out_dim),
            )),
        }
    }

    /// Linear layer without bias.
    pub fn new_no_bias(name: &str, in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        Linear {
            w: ParamRef::new(format!("{name}.w"), glorot_uniform(in_dim, out_dim, rng)),
            b: None,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.shape().0
    }

    pub fn out_dim(&self) -> usize {
        self.w.shape().1
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        self.forward_act(g, x, Activation::Identity)
    }

    /// `act(x W + b)` — records a single fused node when the layer has a
    /// bias and the activation fuses; otherwise falls back to the unfused
    /// op sequence (bit-identical either way).
    pub fn forward_act(&self, g: &mut Graph, x: NodeId, act: Activation) -> NodeId {
        let w = g.param(&self.w);
        if let (Some(b), Some(fused)) = (&self.b, act.as_fused()) {
            let bn = g.param(b);
            return g.matmul_bias_act(x, w, bn, fused);
        }
        let y = g.matmul(x, w);
        let y = match &self.b {
            Some(b) => {
                let bn = g.param(b);
                g.add_row(y, bn)
            }
            None => y,
        };
        act.apply(g, y)
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        set.track(self.w.clone());
        if let Some(b) = &self.b {
            set.track(b.clone());
        }
    }
}

/// Multi-layer perceptron with a shared hidden activation; the final layer is
/// linear (logits).
#[derive(Clone, Debug)]
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub hidden_activation: Activation,
}

impl Mlp {
    /// `dims` is `[in, h1, ..., out]`.
    pub fn new(name: &str, dims: &[usize], hidden_activation: Activation, rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least in/out dims");
        let layers = (0..dims.len() - 1)
            .map(|i| Linear::new(&format!("{name}.l{i}"), dims[i], dims[i + 1], rng))
            .collect();
        Mlp {
            layers,
            hidden_activation,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i + 1 < self.layers.len() {
                self.hidden_activation
            } else {
                Activation::Identity
            };
            h = layer.forward_act(g, h, act);
        }
        h
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        for l in &self.layers {
            l.collect_params(set);
        }
    }

    /// Total scalar parameter count (used for MS-Gate filter sizing and the
    /// Table III model-size column).
    pub fn num_scalars(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.len() + l.b.as_ref().map_or(0, |b| b.len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_tensor::init::{normal_matrix, seeded_rng};
    use uvd_tensor::Adam;

    #[test]
    fn linear_shapes() {
        let mut rng = seeded_rng(1);
        let l = Linear::new("t", 4, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::zeros(5, 4));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 3));
    }

    #[test]
    fn mlp_learns_xor_like_split() {
        // Tiny sanity check: 2-layer MLP separates two Gaussian blobs.
        let mut rng = seeded_rng(2);
        let mlp = Mlp::new("m", &[2, 8, 1], Activation::Tanh, &mut rng);
        let mut set = ParamSet::new();
        mlp.collect_params(&mut set);
        let mut opt = Adam::new(0.05);

        let mut xs = normal_matrix(40, 2, 0.0, 0.3, &mut rng);
        let mut targets = vec![0.0f32; 40];
        for (i, t) in targets.iter_mut().enumerate() {
            if i % 2 == 0 {
                xs.set(i, 0, xs.get(i, 0) + 2.0);
                *t = 1.0;
            }
        }
        let targets = std::sync::Arc::new(targets);
        let weights = std::sync::Arc::new(vec![1.0f32; 40]);
        let mut last = f32::INFINITY;
        for _ in 0..120 {
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let z = mlp.forward(&mut g, x);
            let loss = g.bce_with_logits(z, targets.clone(), weights.clone());
            last = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            opt.step(&set);
        }
        assert!(last < 0.2, "final loss {last}");
    }

    #[test]
    fn mlp_param_count() {
        let mut rng = seeded_rng(3);
        let mlp = Mlp::new("m", &[4, 3, 1], Activation::Relu, &mut rng);
        // 4*3 + 3 + 3*1 + 1 = 19
        assert_eq!(mlp.num_scalars(), 19);
        let mut set = ParamSet::new();
        mlp.collect_params(&mut set);
        assert_eq!(set.num_scalars(), 19);
    }

    #[test]
    fn activations_apply() {
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let r = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(r).as_slice(), &[0.0, 2.0]);
        let lr = Activation::LeakyRelu(0.1).apply(&mut g, x);
        assert!((g.value(lr).get(0, 0) + 0.1).abs() < 1e-6);
        let id = Activation::Identity.apply(&mut g, x);
        assert_eq!(id, x);
    }
}
