//! Trainable CNN blocks for the image-based baselines (UVLens, MUVFCN).

use crate::layers::Activation;
use uvd_tensor::conv::{ConvMeta, PoolMeta};
use uvd_tensor::init::he_normal;
use uvd_tensor::{Graph, Matrix, NodeId, ParamRef, ParamSet, Rng64};

/// Conv + bias + activation + 2×2 max pool.
#[derive(Clone, Debug)]
pub struct ConvBlock {
    pub kernel: ParamRef,
    pub bias: ParamRef,
    pub meta: ConvMeta,
    pub pool: PoolMeta,
    pub activation: Activation,
}

impl ConvBlock {
    /// 3×3 stride-1 pad-1 convolution over a `side × side` input, followed by
    /// a 2×2 pool. Output side is `side / 2`.
    pub fn new(name: &str, c_in: usize, c_out: usize, side: usize, rng: &mut Rng64) -> Self {
        Self::with_stride(name, c_in, c_out, side, 1, rng)
    }

    /// As [`ConvBlock::new`] but with a configurable convolution stride; a
    /// stride of 2 halves the side before pooling (output side
    /// `side / (2 * stride)`), trading accuracy for speed in the heavy CNN
    /// baselines.
    pub fn with_stride(
        name: &str,
        c_in: usize,
        c_out: usize,
        side: usize,
        stride: usize,
        rng: &mut Rng64,
    ) -> Self {
        let meta = ConvMeta {
            c_in,
            h_in: side,
            w_in: side,
            c_out,
            k: 3,
            stride,
            pad: 1,
        };
        let (kr, kc) = meta.kernel_shape();
        let conv_side = meta.h_out();
        ConvBlock {
            kernel: ParamRef::new(format!("{name}.k"), he_normal(kr, kc, rng)),
            bias: ParamRef::new(format!("{name}.b"), Matrix::zeros(1, c_out)),
            meta,
            pool: PoolMeta {
                channels: c_out,
                h_in: conv_side,
                w_in: conv_side,
            },
            activation: Activation::Relu,
        }
    }

    /// Flattened output length per sample after pooling.
    pub fn out_len(&self) -> usize {
        self.pool.out_len()
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let k = g.param(&self.kernel);
        let y = g.conv2d(x, k, self.meta);
        let b = g.param(&self.bias);
        let y = g.add_chan_bias(y, b, self.meta.c_out, self.meta.h_out() * self.meta.w_out());
        let y = self.activation.apply(g, y);
        g.max_pool2(y, self.pool)
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        set.track(self.kernel.clone());
        set.track(self.bias.clone());
    }
}

/// A small conv backbone: a chain of [`ConvBlock`]s halving the spatial side
/// each stage.
#[derive(Clone, Debug)]
pub struct ConvBackbone {
    pub blocks: Vec<ConvBlock>,
}

impl ConvBackbone {
    /// `channels = [c_in, c1, c2, ...]` with input side `side` (must be
    /// divisible by `2^(len-1)`).
    pub fn new(name: &str, channels: &[usize], side: usize, rng: &mut Rng64) -> Self {
        assert!(channels.len() >= 2);
        let mut s = side;
        let blocks = (0..channels.len() - 1)
            .map(|i| {
                let b = ConvBlock::new(
                    &format!("{name}.c{i}"),
                    channels[i],
                    channels[i + 1],
                    s,
                    rng,
                );
                s /= 2;
                b
            })
            .collect();
        ConvBackbone { blocks }
    }

    pub fn out_len(&self) -> usize {
        self.blocks.last().expect("non-empty").out_len()
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = x;
        for b in &self.blocks {
            h = b.forward(g, h);
        }
        h
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        for b in &self.blocks {
            b.collect_params(set);
        }
    }
}

/// Histogram equalization over each image's luminance distribution, the
/// UVLens preprocessing step. Operates on a flat batch (`n × img_len`
/// values in [0,1]); equalizes each sample independently across all
/// channels.
pub fn histogram_equalize(images: &Matrix) -> Matrix {
    let (n, len) = images.shape();
    let mut out = Matrix::zeros(n, len);
    let bins = 64usize;
    for i in 0..n {
        let row = images.row(i);
        let mut hist = vec![0usize; bins];
        for &v in row {
            let b = ((v.clamp(0.0, 1.0) * (bins - 1) as f32).round()) as usize;
            hist[b] += 1;
        }
        let mut cdf = vec![0f32; bins];
        let mut acc = 0usize;
        for (b, &h) in hist.iter().enumerate() {
            acc += h;
            cdf[b] = acc as f32 / len as f32;
        }
        let orow = out.row_mut(i);
        for (o, &v) in orow.iter_mut().zip(row.iter()) {
            let b = ((v.clamp(0.0, 1.0) * (bins - 1) as f32).round()) as usize;
            *o = cdf[b];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_tensor::init::{seeded_rng, uniform_matrix};

    #[test]
    fn conv_block_halves_side() {
        let mut rng = seeded_rng(1);
        let b = ConvBlock::new("c", 3, 8, 16, &mut rng);
        assert_eq!(b.out_len(), 8 * 8 * 8);
        let mut g = Graph::new();
        let x = g.constant(uniform_matrix(2, 3 * 16 * 16, 0.0, 1.0, &mut rng));
        let y = b.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 8 * 8 * 8));
    }

    #[test]
    fn backbone_chains_and_trains() {
        let mut rng = seeded_rng(2);
        let bb = ConvBackbone::new("b", &[3, 4, 8], 16, &mut rng);
        assert_eq!(bb.out_len(), 8 * 4 * 4);
        let mut g = Graph::new();
        let x = g.constant(uniform_matrix(2, 3 * 16 * 16, 0.0, 1.0, &mut rng));
        let y = bb.forward(&mut g, x);
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads();
        let mut set = ParamSet::new();
        bb.collect_params(&mut set);
        assert!(set.grad_norm() > 0.0);
    }

    #[test]
    fn histogram_equalization_flattens_distribution() {
        let mut rng = seeded_rng(3);
        // Low-contrast image concentrated in [0.4, 0.5].
        let img = uniform_matrix(1, 256, 0.4, 0.5, &mut rng);
        let eq = histogram_equalize(&img);
        let min = eq.as_slice().iter().copied().fold(f32::INFINITY, f32::min);
        let max = eq
            .as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.5, "equalization should stretch contrast");
        assert!(eq.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn histogram_equalization_monotone() {
        // Pixel order must be preserved within a sample.
        let img = Matrix::from_vec(1, 4, vec![0.1, 0.5, 0.3, 0.9]);
        let eq = histogram_equalize(&img);
        let v = eq.as_slice();
        assert!(v[0] <= v[2] && v[2] <= v[1] && v[1] <= v[3]);
    }
}
