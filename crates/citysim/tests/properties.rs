//! Property-based tests of the city generator: invariants that must hold
//! for any seed and a range of configurations.

use proptest::prelude::*;
use uvd_citysim::{City, CityConfig, CityPreset, LandUse, RegionProfile, IMG_LEN};

fn any_config() -> impl Strategy<Value = CityConfig> {
    (
        12usize..24,
        12usize..24,
        1usize..3,
        3usize..8,
        0.5f64..1.0,
        2.0f64..5.0,
    )
        .prop_map(|(h, w, centers, patches, discovery, ratio)| CityConfig {
            name: "prop".into(),
            height: h,
            width: w,
            n_centers: centers,
            n_uv_patches: patches,
            uv_patch_size: (2, 5),
            uv_discovery_rate: discovery,
            non_uv_label_ratio: ratio,
            road_spacing: 2,
            road_keep_prob: 0.8,
            poi_density: 0.5,
            n_nature_patches: 2,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants hold for any configuration and seed.
    #[test]
    fn city_invariants(cfg in any_config(), seed in 0u64..1000) {
        let city = City::from_config(cfg, seed);
        let n = city.n_regions();
        prop_assert_eq!(city.land_use.len(), n);
        prop_assert_eq!(city.profiles.len(), n);
        prop_assert_eq!(city.images.len(), n * IMG_LEN);
        // Every pixel in [0,1].
        prop_assert!(city.images.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Every POI lies inside the grid.
        prop_assert!(city.pois.iter().all(|p| p.region(city.width) < n));
        // Road endpoints are valid intersections.
        let nn = city.roads.nodes.len() as u32;
        prop_assert!(city.roads.edges.iter().all(|&(a, b)| a < nn && b < nn && a != b));
    }

    /// Labels are consistent: labeled UVs are true UVs, labeled non-UVs are
    /// not, and the two sets are disjoint.
    #[test]
    fn label_consistency(cfg in any_config(), seed in 0u64..1000) {
        let city = City::from_config(cfg, seed);
        for &r in &city.labels.uv_regions {
            prop_assert_eq!(city.land_use[r as usize], LandUse::UrbanVillage);
        }
        for &r in &city.labels.non_uv_regions {
            prop_assert_ne!(city.land_use[r as usize], LandUse::UrbanVillage);
        }
        let uv: std::collections::HashSet<_> = city.labels.uv_regions.iter().collect();
        prop_assert!(city.labels.non_uv_regions.iter().all(|r| !uv.contains(r)));
    }

    /// Water and green regions never render as urban-village profiles, and
    /// urban-village land always renders as a UV archetype or the upgraded
    /// confuser.
    #[test]
    fn profile_consistency(seed in 0u64..1000) {
        let city = City::from_config(CityPreset::tiny(), seed);
        for (r, &lu) in city.land_use.iter().enumerate() {
            let p = city.profiles[r];
            match lu {
                LandUse::Water => prop_assert_eq!(p, RegionProfile::Water),
                LandUse::GreenSpace => prop_assert_eq!(p, RegionProfile::Green),
                LandUse::UrbanVillage => prop_assert!(matches!(
                    p,
                    RegionProfile::UvInner | RegionProfile::UvOuter | RegionProfile::OldResidential
                )),
                _ => prop_assert!(!matches!(p, RegionProfile::UvInner | RegionProfile::UvOuter)),
            }
        }
    }

    /// Generation is a pure function of (config, seed).
    #[test]
    fn determinism(seed in 0u64..1000) {
        let a = City::from_config(CityPreset::tiny(), seed);
        let b = City::from_config(CityPreset::tiny(), seed);
        prop_assert_eq!(a.land_use, b.land_use);
        prop_assert_eq!(a.profiles, b.profiles);
        prop_assert_eq!(a.pois.len(), b.pois.len());
        prop_assert_eq!(a.labels.uv_regions, b.labels.uv_regions);
    }
}
