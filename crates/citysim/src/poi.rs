//! POI generation. Per-region counts are Poisson draws whose rates depend on
//! the region's *observable profile*, encoding the socioeconomic contrasts
//! the paper's POI features are designed to pick up — with deliberate
//! overlap across the label boundary:
//!
//! * `UvInner` (inner-city urban village): extremely dense cheap eateries,
//!   small shops and informal services; starved of culture, sport, finance.
//! * `UvOuter` (peripheral urban village): sparse services with a workshop
//!   mix — resembles suburb/industrial fabric.
//! * `OldResidential` (a *non-UV* confuser): rates sit between formal
//!   residential and `UvInner`.

use crate::config::CityConfig;
use crate::landuse::LandUseMap;
use crate::types::{Poi, PoiKind, RegionProfile, CELL_METERS};
use rand::rngs::SmallRng;
use rand::Rng;

/// Expected POIs per region for a `(kind, profile)` pair, before the global
/// `poi_density` multiplier.
///
/// Column order: `[Downtown, Commercial, Residential, OldResidential,
/// UvInner, UvOuter, Industrial, Suburb, Green, Water]`.
pub fn kind_rate(kind: PoiKind, profile: RegionProfile) -> f64 {
    use PoiKind::*;
    let t: [f64; 10] = match kind {
        Restaurant => [1.5, 1.8, 0.8, 1.4, 1.9, 0.7, 0.4, 0.15, 0.02, 0.0],
        FastFood => [0.8, 1.0, 0.5, 0.9, 1.3, 0.6, 0.3, 0.1, 0.0, 0.0],
        Teahouse => [0.3, 0.4, 0.2, 0.3, 0.5, 0.15, 0.05, 0.03, 0.02, 0.0],
        Hotel => [0.6, 0.5, 0.1, 0.15, 0.35, 0.1, 0.05, 0.03, 0.01, 0.0],
        Hostel => [0.15, 0.2, 0.05, 0.15, 0.6, 0.2, 0.03, 0.02, 0.0, 0.0],
        ShoppingMall => [0.25, 0.15, 0.04, 0.02, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        Supermarket => [0.3, 0.35, 0.25, 0.2, 0.12, 0.06, 0.05, 0.04, 0.0, 0.0],
        Market => [0.1, 0.2, 0.12, 0.3, 0.5, 0.2, 0.04, 0.03, 0.0, 0.0],
        Shop => [2.0, 2.5, 1.0, 2.0, 2.6, 1.1, 0.4, 0.2, 0.02, 0.0],
        Laundry => [0.15, 0.25, 0.2, 0.4, 0.65, 0.25, 0.03, 0.03, 0.0, 0.0],
        TelecomOffice => [0.2, 0.25, 0.15, 0.12, 0.08, 0.04, 0.04, 0.02, 0.0, 0.0],
        Housekeeping => [0.1, 0.2, 0.2, 0.35, 0.55, 0.2, 0.02, 0.03, 0.0, 0.0],
        BeautySalon => [0.5, 0.7, 0.35, 0.5, 0.75, 0.25, 0.05, 0.05, 0.0, 0.0],
        ScenicSpot => [0.08, 0.04, 0.02, 0.02, 0.0, 0.0, 0.0, 0.02, 0.3, 0.1],
        Cinema => [0.15, 0.1, 0.03, 0.02, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        Ktv => [0.25, 0.3, 0.08, 0.15, 0.3, 0.08, 0.02, 0.01, 0.0, 0.0],
        InternetCafe => [0.15, 0.2, 0.1, 0.3, 0.6, 0.2, 0.05, 0.02, 0.0, 0.0],
        Gym => [0.3, 0.25, 0.18, 0.06, 0.02, 0.005, 0.02, 0.02, 0.0, 0.0],
        Stadium => [0.03, 0.02, 0.015, 0.008, 0.0, 0.0, 0.0, 0.005, 0.02, 0.0],
        School => [0.12, 0.12, 0.22, 0.15, 0.05, 0.03, 0.02, 0.05, 0.0, 0.0],
        College => [0.02, 0.015, 0.02, 0.01, 0.0, 0.0, 0.005, 0.01, 0.0, 0.0],
        Kindergarten => [0.1, 0.15, 0.3, 0.2, 0.1, 0.05, 0.02, 0.06, 0.0, 0.0],
        Library => [0.08, 0.04, 0.03, 0.015, 0.0, 0.0, 0.0, 0.005, 0.0, 0.0],
        Museum => [0.05, 0.02, 0.005, 0.003, 0.0, 0.0, 0.0, 0.0, 0.01, 0.0],
        Hospital => [0.05, 0.04, 0.035, 0.02, 0.0, 0.0, 0.005, 0.008, 0.0, 0.0],
        Clinic => [0.3, 0.35, 0.3, 0.3, 0.2, 0.1, 0.05, 0.06, 0.0, 0.0],
        Pharmacy => [0.35, 0.4, 0.35, 0.35, 0.32, 0.12, 0.06, 0.06, 0.0, 0.0],
        GasStation => [0.05, 0.06, 0.05, 0.04, 0.01, 0.05, 0.15, 0.08, 0.0, 0.0],
        CarRepair => [0.08, 0.12, 0.1, 0.12, 0.06, 0.15, 0.3, 0.08, 0.0, 0.0],
        Parking => [0.8, 0.5, 0.4, 0.2, 0.05, 0.04, 0.25, 0.06, 0.01, 0.0],
        BusStop => [0.5, 0.45, 0.4, 0.3, 0.14, 0.08, 0.2, 0.12, 0.03, 0.0],
        SubwayStation => [0.12, 0.06, 0.03, 0.02, 0.005, 0.0, 0.01, 0.0, 0.0, 0.0],
        Airport => [0.0; 10],      // placed at city level
        TrainStation => [0.0; 10], // placed at city level
        CoachStation => [0.0; 10], // placed at city level
        Bank => [0.6, 0.4, 0.2, 0.1, 0.03, 0.01, 0.04, 0.02, 0.0, 0.0],
        Atm => [0.8, 0.6, 0.35, 0.2, 0.07, 0.02, 0.06, 0.03, 0.0, 0.0],
        ResidentialEstate => [0.4, 0.5, 1.3, 1.0, 0.5, 0.3, 0.05, 0.35, 0.0, 0.0],
        OfficeBuilding => [2.0, 0.8, 0.25, 0.15, 0.06, 0.05, 0.35, 0.05, 0.0, 0.0],
        Factory => [0.02, 0.05, 0.04, 0.08, 0.12, 0.5, 1.6, 0.12, 0.0, 0.0],
        GovernmentOffice => [0.25, 0.12, 0.08, 0.05, 0.01, 0.01, 0.04, 0.03, 0.0, 0.0],
        PoliceStation => [0.06, 0.05, 0.045, 0.035, 0.008, 0.005, 0.02, 0.02, 0.0, 0.0],
        Gate => [0.3, 0.3, 0.5, 0.45, 0.4, 0.25, 0.3, 0.1, 0.05, 0.0],
        Hill => [0.0, 0.0, 0.005, 0.005, 0.005, 0.03, 0.005, 0.04, 0.15, 0.0],
        RoadFacility => [0.5, 0.45, 0.35, 0.3, 0.15, 0.1, 0.3, 0.15, 0.03, 0.0],
        RailwayFacility => [0.03, 0.02, 0.015, 0.01, 0.005, 0.02, 0.05, 0.02, 0.0, 0.0],
        Park => [0.1, 0.08, 0.12, 0.08, 0.01, 0.01, 0.01, 0.05, 0.8, 0.02],
        BusRouteStop => [0.45, 0.4, 0.35, 0.28, 0.12, 0.06, 0.18, 0.1, 0.02, 0.0],
    };
    match profile {
        // The confusers are *mixtures*: at region level (with Poisson noise
        // on low densities) they are nearly indistinguishable from their UV
        // counterparts; only aggregating several regions recovers the small
        // systematic gap — the relational signal graph models exploit.
        RegionProfile::OldResidential => 0.28 * t[2] + 0.72 * t[4],
        RegionProfile::UvOuter => 0.55 * t[5] + 0.45 * t[7],
        _ => t[profile_index(profile)],
    }
}

fn profile_index(p: RegionProfile) -> usize {
    match p {
        RegionProfile::Downtown => 0,
        RegionProfile::Commercial => 1,
        RegionProfile::Residential => 2,
        RegionProfile::OldResidential => 3,
        RegionProfile::UvInner => 4,
        RegionProfile::UvOuter => 5,
        RegionProfile::Industrial => 6,
        RegionProfile::Suburb => 7,
        RegionProfile::Green => 8,
        RegionProfile::Water => 9,
    }
}

/// Knuth Poisson sampler (adequate for the small rates used here).
pub fn poisson(lambda: f64, rng: &mut SmallRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological lambda
        }
    }
}

/// City-level landmark kinds placed explicitly so every radius feature has a
/// referent somewhere in the city.
const LANDMARKS: [(PoiKind, usize); 3] = [
    (PoiKind::Airport, 1),
    (PoiKind::TrainStation, 2),
    (PoiKind::CoachStation, 3),
];

/// Generate all POIs for the city.
pub fn generate_pois(
    cfg: &CityConfig,
    map: &LandUseMap,
    profiles: &[RegionProfile],
    rng: &mut SmallRng,
) -> Vec<Poi> {
    let (w, h) = (cfg.width, cfg.height);
    let mut pois = Vec::new();

    // Per-region Poisson draws for the common kinds.
    for (r, &profile) in profiles.iter().enumerate().take(w * h) {
        let (gx, gy) = (r % w, r / w);
        for kind in PoiKind::ALL {
            let rate = kind_rate(kind, profile) * cfg.poi_density;
            let count = poisson(rate, rng);
            for _ in 0..count {
                pois.push(Poi {
                    kind,
                    x: (gx as f64 + rng.gen::<f64>()) * CELL_METERS,
                    y: (gy as f64 + rng.gen::<f64>()) * CELL_METERS,
                });
            }
        }
    }

    // Landmarks: airport on the far periphery, stations toward the center.
    for (kind, count) in LANDMARKS {
        for _ in 0..count {
            let r = match kind {
                PoiKind::Airport => sample_region_by(map, profiles, rng, |c| c > 0.8),
                _ => sample_region_by(map, profiles, rng, |c| c < 0.45),
            };
            let (gx, gy) = (r % w, r / w);
            pois.push(Poi {
                kind,
                x: (gx as f64 + rng.gen::<f64>()) * CELL_METERS,
                y: (gy as f64 + rng.gen::<f64>()) * CELL_METERS,
            });
        }
    }

    pois
}

/// Sample a region whose centrality satisfies `pred` (falls back to any
/// region after enough rejections, so generation always terminates).
fn sample_region_by(
    map: &LandUseMap,
    profiles: &[RegionProfile],
    rng: &mut SmallRng,
    pred: impl Fn(f64) -> bool,
) -> usize {
    let n = map.cells.len();
    for _ in 0..200 {
        let r = rng.gen_range(0..n);
        if pred(map.centrality[r]) && profiles[r] != RegionProfile::Water {
            return r;
        }
    }
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::config::{CityConfig, CityPreset};
    use crate::landuse::{derive_profiles, generate_land_use};
    use rand::SeedableRng;

    fn tiny_city_pois(seed: u64) -> (LandUseMap, Vec<RegionProfile>, Vec<Poi>, CityConfig) {
        let cfg = CityPreset::tiny();
        let mut rng = SmallRng::seed_from_u64(seed);
        let map = generate_land_use(&cfg, &mut rng);
        let profiles = derive_profiles(&cfg, &map, &mut rng);
        let pois = generate_pois(&cfg, &map, &profiles, &mut rng);
        (map, profiles, pois, cfg)
    }

    #[test]
    fn pois_land_inside_their_region() {
        let (_, _, pois, cfg) = tiny_city_pois(1);
        for p in &pois {
            let r = p.region(cfg.width);
            assert!(r < cfg.n_regions(), "poi outside grid");
        }
    }

    #[test]
    fn landmarks_present() {
        let (_, _, pois, _) = tiny_city_pois(2);
        for (kind, count) in LANDMARKS {
            let got = pois.iter().filter(|p| p.kind == kind).count();
            assert_eq!(got, count, "{kind:?}");
        }
    }

    #[test]
    fn uv_inner_denser_than_residential_but_poor_in_finance() {
        use RegionProfile::*;
        assert!(
            kind_rate(PoiKind::Restaurant, UvInner) > kind_rate(PoiKind::Restaurant, Residential)
        );
        assert!(kind_rate(PoiKind::Bank, UvInner) < kind_rate(PoiKind::Bank, Residential));
        assert!(kind_rate(PoiKind::Gym, UvInner) < kind_rate(PoiKind::Gym, Residential));
        assert_eq!(kind_rate(PoiKind::ShoppingMall, UvInner), 0.0);
    }

    #[test]
    fn old_residential_sits_between_residential_and_uv() {
        // The confuser profile must genuinely interpolate for the key
        // discriminative kinds.
        use RegionProfile::*;
        for kind in [
            PoiKind::Restaurant,
            PoiKind::Shop,
            PoiKind::Laundry,
            PoiKind::Bank,
        ] {
            let res = kind_rate(kind, Residential);
            let old = kind_rate(kind, OldResidential);
            let uv = kind_rate(kind, UvInner);
            let (lo, hi) = if res < uv { (res, uv) } else { (uv, res) };
            assert!(old >= lo && old <= hi, "{kind:?}: {res} {old} {uv}");
        }
    }

    #[test]
    fn uv_outer_resembles_suburb_more_than_uv_inner_does() {
        use RegionProfile::*;
        let dist = |a: RegionProfile, b: RegionProfile| -> f64 {
            PoiKind::ALL
                .iter()
                .map(|&k| (kind_rate(k, a) - kind_rate(k, b)).abs())
                .sum()
        };
        assert!(dist(UvOuter, Suburb) < dist(UvInner, Suburb));
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 20_000;
        let lambda = 2.5;
        let total: usize = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn water_regions_nearly_empty() {
        let (_, profiles, pois, cfg) = tiny_city_pois(6);
        let mut water_pois = 0usize;
        let mut water_cells = 0usize;
        for (r, &p) in profiles.iter().enumerate() {
            if p == RegionProfile::Water {
                water_cells += 1;
                water_pois += pois.iter().filter(|q| q.region(cfg.width) == r).count();
            }
        }
        if water_cells > 0 {
            assert!(water_pois <= water_cells, "water should be nearly POI-free");
        }
    }
}
