//! # uvd-citysim
//!
//! Synthetic city generator standing in for the paper's proprietary urban
//! data (Baidu Maps POIs, satellite tiles, road networks, crowdsourced UV
//! labels). Given a [`CityConfig`] and a seed it deterministically produces:
//!
//! * a latent land-use map with urban-village patches planted in the
//!   downtown–suburb transition ring ([`landuse`]),
//! * POIs whose per-category rates encode the socioeconomic signature of
//!   each land use ([`poi`]),
//! * a road network with poor formal connectivity inside urban villages
//!   ([`roads`]),
//! * 32×32 RGB "satellite" textures per region ([`imagery`]),
//! * survey labels: discovered UV patches plus verified negatives
//!   ([`labels`]).
//!
//! See DESIGN.md §1 for the substitution argument: the generator reproduces
//! the class-conditional statistics the paper's features rely on, so the
//! full CMSF pipeline is exercised on equivalent code paths.
//!
//! ```
//! use uvd_citysim::{City, CityPreset};
//!
//! let city = City::from_config(CityPreset::tiny(), 42);
//! assert!(city.n_true_uvs() > 0);
//! assert!(city.labels.num_labeled() > 0);
//! ```

pub mod config;
pub mod imagery;
pub mod labels;
pub mod landuse;
pub mod noise;
pub mod poi;
pub mod roads;
pub mod stream;
pub mod tasks;
pub mod types;

pub use config::{CityConfig, CityPreset};
pub use stream::{CityStream, CityTile};
pub use tasks::{land_use_classes, land_use_histogram, LAND_USE_CLASSES};
pub use types::{
    City, FacilityClass, LandUse, Poi, PoiCategory, PoiKind, RadiusType, RegionProfile,
    RoadNetwork, SurveyLabels, CELL_METERS, IMG_CHANNELS, IMG_LEN, IMG_SIZE,
};

use rand::SeedableRng;

impl City {
    /// Generate a city from a configuration, fully deterministic in `seed`.
    pub fn from_config(cfg: CityConfig, seed: u64) -> City {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let map = landuse::generate_land_use(&cfg, &mut rng);
        let profiles = landuse::derive_profiles(&cfg, &map, &mut rng);
        let pois = poi::generate_pois(&cfg, &map, &profiles, &mut rng);
        let roads = roads::generate_roads(&cfg, &map, &mut rng);
        let images = imagery::render_city(&profiles, &mut rng);
        let labels = labels::survey(&cfg, &map, &mut rng);
        City {
            height: cfg.height,
            width: cfg.width,
            land_use: map.cells,
            profiles,
            pois,
            roads,
            images,
            labels,
            seed,
            name: cfg.name,
        }
    }

    /// Generate one of the three paper-analogue cities.
    pub fn from_preset(preset: CityPreset, seed: u64) -> City {
        City::from_config(preset.config(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_city_has_all_parts() {
        let city = City::from_config(CityPreset::tiny(), 1);
        assert_eq!(city.land_use.len(), city.n_regions());
        assert_eq!(city.images.len(), city.n_regions() * IMG_LEN);
        assert!(!city.pois.is_empty());
        assert!(!city.roads.edges.is_empty());
        assert!(!city.labels.uv_regions.is_empty());
        assert!(!city.labels.non_uv_regions.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = City::from_config(CityPreset::tiny(), 7);
        let b = City::from_config(CityPreset::tiny(), 7);
        assert_eq!(a.land_use, b.land_use);
        assert_eq!(a.pois.len(), b.pois.len());
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels.uv_regions, b.labels.uv_regions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = City::from_config(CityPreset::tiny(), 1);
        let b = City::from_config(CityPreset::tiny(), 2);
        assert_ne!(a.land_use, b.land_use);
    }

    #[test]
    fn presets_generate() {
        for preset in CityPreset::ALL {
            let city = City::from_preset(preset, 3);
            assert!(city.n_true_uvs() > 30, "{preset:?} too few UVs");
            assert!(
                city.labels.uv_regions.len() <= city.n_true_uvs(),
                "cannot label more UVs than exist"
            );
        }
    }

    #[test]
    fn region_geometry_roundtrip() {
        let city = City::from_config(CityPreset::tiny(), 4);
        for r in [0usize, 17, 161, city.n_regions() - 1] {
            let (x, y) = city.region_xy(r);
            assert_eq!(city.region_at(x, y), r);
            let (cx, cy) = city.region_center(r);
            assert!(cx > 0.0 && cy > 0.0);
        }
    }
}
