//! Tile-streaming city emitter: produce a city in region blocks instead of
//! one giant [`City`], so Beijing-scale grids (~350k regions) never hold
//! all imagery in memory at once (354k regions × 3072 floats ≈ 4.3 GB —
//! the tile path holds one band of rows at a time).
//!
//! The stream runs the exact generation pipeline of [`City::from_config`]
//! against a single sequentially-consumed RNG: the cheap "skeleton" stages
//! (land use → profiles → POIs → roads) run up front in `new`, then each
//! [`CityStream::next_tile`] renders the imagery for the next band of grid
//! rows with the *same continuing* RNG, and [`CityStream::finish`] runs the
//! label survey last. Because [`imagery::render_city`] renders regions
//! strictly in order with one shared RNG, splitting the loop at arbitrary
//! row boundaries consumes identical RNG draws — a fully streamed city is
//! **bitwise equal** to the monolithic one ([`tests::streamed_equals_monolithic`]).
//!
//! The skeleton (land use, profiles, POIs, roads) stays resident for the
//! whole stream — it is O(n) small fields, not O(n × IMG_LEN) — so graph
//! construction (edges, POI features) can start before any tile is pulled.

use crate::config::CityConfig;
use crate::imagery;
use crate::landuse::{self, LandUseMap};
use crate::types::{City, Poi, RegionProfile, RoadNetwork, SurveyLabels, IMG_LEN};
use crate::{labels, poi, roads};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One band of rendered regions: grid rows `row_start..row_start + n_rows`,
/// i.e. regions `region_start..region_start + n_rows * width`.
pub struct CityTile {
    /// First grid row covered by this tile.
    pub row_start: usize,
    /// Number of grid rows in this tile (last tile may be short).
    pub n_rows: usize,
    /// First region id in this tile (`row_start * width`).
    pub region_start: usize,
    /// Number of regions in this tile.
    pub n_regions: usize,
    /// Channel-major imagery, `n_regions × IMG_LEN`.
    pub images: Vec<f32>,
}

/// Streaming counterpart of [`City::from_config`]. The skeleton is
/// generated eagerly; imagery arrives per tile; labels arrive at
/// [`CityStream::finish`].
pub struct CityStream {
    cfg: CityConfig,
    seed: u64,
    tile_rows: usize,
    rng: SmallRng,
    next_row: usize,
    map: LandUseMap,
    profiles: Vec<RegionProfile>,
    pois: Vec<Poi>,
    roads: RoadNetwork,
}

impl CityStream {
    /// Run the skeleton stages (land use → profiles → POIs → roads) and
    /// position the RNG at the start of imagery rendering. `tile_rows` is
    /// the number of grid rows per emitted tile (clamped to ≥ 1).
    pub fn new(cfg: CityConfig, seed: u64, tile_rows: usize) -> CityStream {
        let mut rng = SmallRng::seed_from_u64(seed);
        let map = landuse::generate_land_use(&cfg, &mut rng);
        let profiles = landuse::derive_profiles(&cfg, &map, &mut rng);
        let pois = poi::generate_pois(&cfg, &map, &profiles, &mut rng);
        let roads = roads::generate_roads(&cfg, &map, &mut rng);
        CityStream {
            cfg,
            seed,
            tile_rows: tile_rows.max(1),
            rng,
            next_row: 0,
            map,
            profiles,
            pois,
            roads,
        }
    }

    pub fn width(&self) -> usize {
        self.cfg.width
    }

    pub fn height(&self) -> usize {
        self.cfg.height
    }

    pub fn n_regions(&self) -> usize {
        self.cfg.width * self.cfg.height
    }

    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of tiles the stream will emit in total.
    pub fn n_tiles(&self) -> usize {
        self.cfg.height.div_ceil(self.tile_rows)
    }

    /// Per-region observable profiles (full city, available up front).
    pub fn profiles(&self) -> &[RegionProfile] {
        &self.profiles
    }

    /// POIs (full city, available up front).
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Road network (full city, available up front).
    pub fn roads(&self) -> &RoadNetwork {
        &self.roads
    }

    /// Render the next band of rows. Returns `None` once every row has been
    /// emitted; after that, call [`CityStream::finish`] for the labels.
    pub fn next_tile(&mut self) -> Option<CityTile> {
        if self.next_row >= self.cfg.height {
            return None;
        }
        let row_start = self.next_row;
        let n_rows = self.tile_rows.min(self.cfg.height - row_start);
        self.next_row += n_rows;
        let region_start = row_start * self.cfg.width;
        let n_regions = n_rows * self.cfg.width;
        let mut images = vec![0.0f32; n_regions * IMG_LEN];
        for i in 0..n_regions {
            imagery::render_region(
                self.profiles[region_start + i],
                &mut self.rng,
                &mut images[i * IMG_LEN..(i + 1) * IMG_LEN],
            );
        }
        Some(CityTile {
            row_start,
            n_rows,
            region_start,
            n_regions,
            images,
        })
    }

    /// Run the label survey. Must be called after the last tile has been
    /// pulled — the survey draws from the RNG *after* all imagery, exactly
    /// as in [`City::from_config`].
    pub fn finish(mut self) -> SurveyLabels {
        assert!(
            self.next_row >= self.cfg.height,
            "finish() before all tiles were pulled would misalign the RNG \
             ({}/{} rows emitted)",
            self.next_row,
            self.cfg.height
        );
        labels::survey(&self.cfg, &self.map, &mut self.rng)
    }

    /// Drain the remaining tiles and assemble a monolithic [`City`] —
    /// bitwise equal to `City::from_config(cfg, seed)`. Intended for small
    /// cities and for equivalence tests; defeats the purpose at scale.
    pub fn collect_city(mut self) -> City {
        let n = self.n_regions();
        let mut images = vec![0.0f32; n * IMG_LEN];
        while let Some(tile) = self.next_tile() {
            let lo = tile.region_start * IMG_LEN;
            images[lo..lo + tile.images.len()].copy_from_slice(&tile.images);
        }
        let height = self.cfg.height;
        let width = self.cfg.width;
        let seed = self.seed;
        let name = self.cfg.name.clone();
        let land_use = self.map.cells.clone();
        let profiles = std::mem::take(&mut self.profiles);
        let pois = std::mem::take(&mut self.pois);
        let roads = std::mem::take(&mut self.roads);
        let labels = self.finish();
        City {
            height,
            width,
            land_use,
            profiles,
            pois,
            roads,
            images,
            labels,
            seed,
            name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityPreset;

    #[test]
    fn streamed_equals_monolithic() {
        let cfg = CityPreset::tiny();
        let mono = City::from_config(cfg.clone(), 42);
        // A tile height that does not divide the grid exercises the short
        // final tile.
        let streamed = CityStream::new(cfg, 42, 5).collect_city();
        assert_eq!(mono.land_use, streamed.land_use);
        assert_eq!(mono.profiles, streamed.profiles);
        assert_eq!(mono.pois.len(), streamed.pois.len());
        assert_eq!(mono.roads.edges, streamed.roads.edges);
        assert_eq!(
            mono.images, streamed.images,
            "imagery must be bitwise equal"
        );
        assert_eq!(mono.labels.uv_regions, streamed.labels.uv_regions);
        assert_eq!(mono.labels.non_uv_regions, streamed.labels.non_uv_regions);
    }

    #[test]
    fn tile_geometry_covers_city_once() {
        let cfg = CityPreset::tiny(); // 18×18
        let mut stream = CityStream::new(cfg, 7, 4);
        assert_eq!(stream.n_tiles(), 5); // ceil(18/4)
        let mut next_expected = 0usize;
        let mut tiles = 0usize;
        while let Some(t) = stream.next_tile() {
            assert_eq!(t.region_start, next_expected);
            assert_eq!(t.n_regions, t.n_rows * 18);
            assert_eq!(t.images.len(), t.n_regions * IMG_LEN);
            next_expected += t.n_regions;
            tiles += 1;
        }
        assert_eq!(tiles, 5);
        assert_eq!(next_expected, stream.n_regions());
        let labels = stream.finish();
        assert!(!labels.uv_regions.is_empty());
    }

    #[test]
    #[should_panic(expected = "finish() before all tiles")]
    fn finish_early_panics() {
        let mut stream = CityStream::new(CityPreset::tiny(), 1, 4);
        let _ = stream.next_tile();
        let _ = stream.finish();
    }

    #[test]
    fn tile_height_does_not_change_output() {
        let cfg = CityPreset::tiny();
        let a = CityStream::new(cfg.clone(), 9, 1).collect_city();
        let b = CityStream::new(cfg, 9, 100).collect_city();
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels.uv_regions, b.labels.uv_regions);
    }
}
