//! The "survey": which regions carry labels a detector may train on.
//!
//! Mirrors the paper's ground-truth collection (Appendix I-C): a subset of
//! urban-village patches is *discovered* (news reports + crowdsourcing) and
//! all their regions labeled positive; a sample of verified ordinary regions
//! is labeled negative. Undiscovered UV patches stay unlabeled — they are
//! exactly what the detector is supposed to find.

use crate::config::CityConfig;
use crate::landuse::LandUseMap;
use crate::types::{LandUse, SurveyLabels};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Run the survey over a generated land-use map.
pub fn survey(cfg: &CityConfig, map: &LandUseMap, rng: &mut SmallRng) -> SurveyLabels {
    // Discover UV patches.
    let mut uv_regions: Vec<u32> = Vec::new();
    for patch in &map.uv_patches {
        if rng.gen::<f64>() < cfg.uv_discovery_rate {
            uv_regions.extend_from_slice(patch);
        }
    }
    // Always discover at least one patch so training is possible.
    if uv_regions.is_empty() {
        if let Some(patch) = map.uv_patches.first() {
            uv_regions.extend_from_slice(patch);
        }
    }

    // Negative sample: verified non-UV regions, weighted toward inhabited
    // land uses (the paper samples residential areas for verification).
    let weight = |lu: LandUse| -> f64 {
        match lu {
            LandUse::Residential => 3.0,
            LandUse::Commercial => 2.0,
            LandUse::DowntownCore => 1.5,
            LandUse::Suburb => 1.5,
            LandUse::Industrial => 1.0,
            LandUse::GreenSpace => 0.3,
            LandUse::Water => 0.1,
            LandUse::UrbanVillage => 0.0,
        }
    };
    let mut candidates: Vec<(u32, f64)> = map
        .cells
        .iter()
        .enumerate()
        .filter(|&(_, &lu)| lu != LandUse::UrbanVillage)
        .map(|(r, &lu)| (r as u32, weight(lu)))
        .collect();

    let target = ((uv_regions.len() as f64) * cfg.non_uv_label_ratio).round() as usize;
    let target = target.min(candidates.len());
    // Weighted sampling without replacement via exponential sort keys
    // (Efraimidis–Spirakis).
    let mut keyed: Vec<(f64, u32)> = candidates
        .drain(..)
        .map(|(r, w)| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let key = if w > 0.0 { u.powf(1.0 / w) } else { 0.0 };
            (key, r)
        })
        .collect();
    keyed.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
    let mut non_uv_regions: Vec<u32> = keyed.into_iter().take(target).map(|(_, r)| r).collect();

    uv_regions.sort_unstable();
    uv_regions.dedup();
    non_uv_regions.sort_unstable();

    SurveyLabels {
        uv_regions,
        non_uv_regions,
    }
}

/// Shuffle helper used by downstream splitters (re-exported for tests).
pub fn shuffled_indices(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityPreset;
    use crate::landuse::generate_land_use;
    use rand::SeedableRng;

    fn run(seed: u64) -> (CityConfig, LandUseMap, SurveyLabels) {
        let cfg = CityPreset::tiny();
        let mut rng = SmallRng::seed_from_u64(seed);
        let map = generate_land_use(&cfg, &mut rng);
        let labels = survey(&cfg, &map, &mut rng);
        (cfg, map, labels)
    }

    #[test]
    fn labels_are_consistent_with_ground_truth() {
        let (_, map, labels) = run(1);
        for &r in &labels.uv_regions {
            assert_eq!(map.cells[r as usize], LandUse::UrbanVillage);
        }
        for &r in &labels.non_uv_regions {
            assert_ne!(map.cells[r as usize], LandUse::UrbanVillage);
        }
    }

    #[test]
    fn label_sets_disjoint_and_deduped() {
        let (_, _, labels) = run(2);
        let uv: std::collections::HashSet<_> = labels.uv_regions.iter().collect();
        assert_eq!(uv.len(), labels.uv_regions.len());
        for r in &labels.non_uv_regions {
            assert!(!uv.contains(r));
        }
    }

    #[test]
    fn non_uv_ratio_approximately_respected() {
        let (cfg, _, labels) = run(3);
        let ratio = labels.non_uv_regions.len() as f64 / labels.uv_regions.len().max(1) as f64;
        assert!(
            (ratio - cfg.non_uv_label_ratio).abs() < 1.0,
            "ratio {ratio} vs target {}",
            cfg.non_uv_label_ratio
        );
    }

    #[test]
    fn some_uvs_remain_undiscovered_across_seeds() {
        // With discovery < 1.0, at least one seed should leave a patch
        // unlabeled — the detection target.
        let mut any_undiscovered = false;
        for seed in 0..10 {
            let (_, map, labels) = run(seed);
            let labeled: std::collections::HashSet<_> = labels.uv_regions.iter().copied().collect();
            let total_uv: usize = map.uv_patches.iter().map(|p| p.len()).sum();
            if labeled.len() < total_uv {
                any_undiscovered = true;
                break;
            }
        }
        assert!(any_undiscovered);
    }

    #[test]
    fn survey_deterministic() {
        let (_, _, a) = run(5);
        let (_, _, b) = run(5);
        assert_eq!(a.uv_regions, b.uv_regions);
        assert_eq!(a.non_uv_regions, b.non_uv_regions);
    }
}
