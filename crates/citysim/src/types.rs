//! Core domain types for the synthetic city: land use, POIs, roads, and the
//! assembled [`City`].

use serde::{Deserialize, Serialize};

/// Side length (pixels) of each region's synthetic satellite image.
pub const IMG_SIZE: usize = 32;
/// Channels of each region image (RGB).
pub const IMG_CHANNELS: usize = 3;
/// Flattened length of one region image.
pub const IMG_LEN: usize = IMG_CHANNELS * IMG_SIZE * IMG_SIZE;
/// Side length in meters of one region grid cell (paper: 128 m × 128 m).
pub const CELL_METERS: f64 = 128.0;

/// Latent land use of a region grid. `UrbanVillage` is the positive class of
/// the detection task; everything else is background urban fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LandUse {
    /// Dense central business district.
    DowntownCore,
    /// Commercial strip / mixed retail.
    Commercial,
    /// Formal residential blocks.
    Residential,
    /// Informal settlement — the positive class.
    UrbanVillage,
    /// Industrial / logistics.
    Industrial,
    /// Low-density periphery.
    Suburb,
    /// Parks and vegetation.
    GreenSpace,
    /// Rivers and lakes.
    Water,
}

impl LandUse {
    pub const ALL: [LandUse; 8] = [
        LandUse::DowntownCore,
        LandUse::Commercial,
        LandUse::Residential,
        LandUse::UrbanVillage,
        LandUse::Industrial,
        LandUse::Suburb,
        LandUse::GreenSpace,
        LandUse::Water,
    ];

    pub fn is_urban_village(self) -> bool {
        self == LandUse::UrbanVillage
    }

    /// Stable class index into [`LandUse::ALL`] — the label space of the
    /// downstream land-use classification task.
    pub fn index(self) -> usize {
        LandUse::ALL
            .iter()
            .position(|&l| l == self)
            .expect("every variant is in ALL")
    }

    /// Inverse of [`LandUse::index`].
    pub fn from_index(i: usize) -> Option<LandUse> {
        LandUse::ALL.get(i).copied()
    }
}

/// The 23 top-level POI categories used for the category-distribution
/// features (paper Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PoiCategory {
    FoodService,
    Hotel,
    ShoppingPlace,
    LifeService,
    BeautyIndustry,
    ScenicSpot,
    LeisureEntertainment,
    SportsFitness,
    Education,
    CulturalMedia,
    Medicine,
    AutoService,
    TransportationFacility,
    FinancialService,
    RealEstate,
    Company,
    GovernmentApparatus,
    EntranceExit,
    TopographicalObject,
    Road,
    Railway,
    Greenland,
    BusRoute,
}

impl PoiCategory {
    pub const COUNT: usize = 23;

    pub fn index(self) -> usize {
        self as usize
    }
}

/// The 15 POI types used for the shortest-distance "POI radius" features
/// (paper Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RadiusType {
    Hospital,
    Clinic,
    College,
    School,
    BusStop,
    SubwayStation,
    Airport,
    TrainStation,
    CoachStation,
    ShoppingMall,
    Supermarket,
    Market,
    Shop,
    PoliceStation,
    ScenicSpot,
}

impl RadiusType {
    pub const COUNT: usize = 15;

    pub fn index(self) -> usize {
        self as usize
    }
}

/// The 9 facility classes whose joint presence within 1 km defines the
/// binary "index of basic living facility" feature (paper Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FacilityClass {
    MedicalService,
    ShoppingPlace,
    SportsVenue,
    EducationService,
    FoodService,
    FinancialService,
    CommunicationService,
    PublicSecurityOrgan,
    TransportationFacility,
}

impl FacilityClass {
    pub const COUNT: usize = 9;

    pub fn index(self) -> usize {
        self as usize
    }
}

/// Fine-grained POI kind ("multi-level categories" in the paper's POI basic
/// property data). Each kind maps to a top-level [`PoiCategory`], optionally
/// to a [`RadiusType`], and optionally to a [`FacilityClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PoiKind {
    Restaurant,
    FastFood,
    Teahouse,
    Hotel,
    Hostel,
    ShoppingMall,
    Supermarket,
    Market,
    Shop,
    Laundry,
    TelecomOffice,
    Housekeeping,
    BeautySalon,
    ScenicSpot,
    Cinema,
    Ktv,
    InternetCafe,
    Gym,
    Stadium,
    School,
    College,
    Kindergarten,
    Library,
    Museum,
    Hospital,
    Clinic,
    Pharmacy,
    GasStation,
    CarRepair,
    Parking,
    BusStop,
    SubwayStation,
    Airport,
    TrainStation,
    CoachStation,
    Bank,
    Atm,
    ResidentialEstate,
    OfficeBuilding,
    Factory,
    GovernmentOffice,
    PoliceStation,
    Gate,
    Hill,
    RoadFacility,
    RailwayFacility,
    Park,
    BusRouteStop,
}

impl PoiKind {
    pub const COUNT: usize = 48;

    pub const ALL: [PoiKind; 48] = [
        PoiKind::Restaurant,
        PoiKind::FastFood,
        PoiKind::Teahouse,
        PoiKind::Hotel,
        PoiKind::Hostel,
        PoiKind::ShoppingMall,
        PoiKind::Supermarket,
        PoiKind::Market,
        PoiKind::Shop,
        PoiKind::Laundry,
        PoiKind::TelecomOffice,
        PoiKind::Housekeeping,
        PoiKind::BeautySalon,
        PoiKind::ScenicSpot,
        PoiKind::Cinema,
        PoiKind::Ktv,
        PoiKind::InternetCafe,
        PoiKind::Gym,
        PoiKind::Stadium,
        PoiKind::School,
        PoiKind::College,
        PoiKind::Kindergarten,
        PoiKind::Library,
        PoiKind::Museum,
        PoiKind::Hospital,
        PoiKind::Clinic,
        PoiKind::Pharmacy,
        PoiKind::GasStation,
        PoiKind::CarRepair,
        PoiKind::Parking,
        PoiKind::BusStop,
        PoiKind::SubwayStation,
        PoiKind::Airport,
        PoiKind::TrainStation,
        PoiKind::CoachStation,
        PoiKind::Bank,
        PoiKind::Atm,
        PoiKind::ResidentialEstate,
        PoiKind::OfficeBuilding,
        PoiKind::Factory,
        PoiKind::GovernmentOffice,
        PoiKind::PoliceStation,
        PoiKind::Gate,
        PoiKind::Hill,
        PoiKind::RoadFacility,
        PoiKind::RailwayFacility,
        PoiKind::Park,
        PoiKind::BusRouteStop,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    /// Top-level category of this kind.
    pub fn category(self) -> PoiCategory {
        use PoiCategory as C;
        use PoiKind::*;
        match self {
            Restaurant | FastFood | Teahouse => C::FoodService,
            Hotel | Hostel => C::Hotel,
            ShoppingMall | Supermarket | Market | Shop => C::ShoppingPlace,
            Laundry | TelecomOffice | Housekeeping => C::LifeService,
            BeautySalon => C::BeautyIndustry,
            ScenicSpot => C::ScenicSpot,
            Cinema | Ktv | InternetCafe => C::LeisureEntertainment,
            Gym | Stadium => C::SportsFitness,
            School | College | Kindergarten => C::Education,
            Library | Museum => C::CulturalMedia,
            Hospital | Clinic | Pharmacy => C::Medicine,
            GasStation | CarRepair | Parking => C::AutoService,
            BusStop | SubwayStation | Airport | TrainStation | CoachStation => {
                C::TransportationFacility
            }
            Bank | Atm => C::FinancialService,
            ResidentialEstate => C::RealEstate,
            OfficeBuilding | Factory => C::Company,
            GovernmentOffice | PoliceStation => C::GovernmentApparatus,
            Gate => C::EntranceExit,
            Hill => C::TopographicalObject,
            RoadFacility => C::Road,
            RailwayFacility => C::Railway,
            Park => C::Greenland,
            BusRouteStop => C::BusRoute,
        }
    }

    /// Radius feature type of this kind, if any.
    pub fn radius_type(self) -> Option<RadiusType> {
        use PoiKind::*;
        use RadiusType as R;
        Some(match self {
            Hospital => R::Hospital,
            Clinic => R::Clinic,
            College => R::College,
            School => R::School,
            BusStop => R::BusStop,
            SubwayStation => R::SubwayStation,
            Airport => R::Airport,
            TrainStation => R::TrainStation,
            CoachStation => R::CoachStation,
            ShoppingMall => R::ShoppingMall,
            Supermarket => R::Supermarket,
            Market => R::Market,
            Shop => R::Shop,
            PoliceStation => R::PoliceStation,
            ScenicSpot => R::ScenicSpot,
            _ => return None,
        })
    }

    /// Basic-living-facility class of this kind, if any.
    pub fn facility_class(self) -> Option<FacilityClass> {
        use FacilityClass as F;
        use PoiKind::*;
        Some(match self {
            Hospital | Clinic | Pharmacy => F::MedicalService,
            ShoppingMall | Supermarket | Market | Shop => F::ShoppingPlace,
            Gym | Stadium => F::SportsVenue,
            School | College | Kindergarten => F::EducationService,
            Restaurant | FastFood => F::FoodService,
            Bank | Atm => F::FinancialService,
            TelecomOffice => F::CommunicationService,
            PoliceStation => F::PublicSecurityOrgan,
            BusStop | SubwayStation | TrainStation | CoachStation => F::TransportationFacility,
            _ => return None,
        })
    }
}

/// Observable generation profile of a region. Distinct from [`LandUse`]
/// (which carries the ground-truth label): several profiles deliberately
/// overlap across the label boundary so the detection task has irreducible
/// feature ambiguity, and urban villages split into two archetypes so a
/// single global model cannot fit both (the "diverse urban patterns"
/// challenge of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionProfile {
    Downtown,
    Commercial,
    Residential,
    /// Aging formal housing: POI mix and appearance *between* residential
    /// and urban village — the main source of false positives.
    OldResidential,
    /// Inner-city urban village: extremely dense small commerce and housing.
    UvInner,
    /// Peripheral urban village: sparse services, workshop mix — reads like
    /// suburb/industrial to feature-only models.
    UvOuter,
    Industrial,
    Suburb,
    Green,
    Water,
}

/// A Point of Interest with its kind and location in meters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Poi {
    pub kind: PoiKind,
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Poi {
    /// Region grid cell containing this POI.
    pub fn region(&self, width: usize) -> usize {
        let gx = (self.x / CELL_METERS) as usize;
        let gy = (self.y / CELL_METERS) as usize;
        gy * width + gx
    }
}

/// Road network: intersections (nodes, geolocated in meters) and undirected
/// road segments (edges). Mirrors the protocol of Karduni et al. [34].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    /// Intersection coordinates in meters.
    pub nodes: Vec<(f64, f64)>,
    /// Undirected road segments between intersections.
    pub edges: Vec<(u32, u32)>,
}

impl RoadNetwork {
    /// Region grid cell containing intersection `i`.
    pub fn node_region(&self, i: usize, width: usize) -> usize {
        let (x, y) = self.nodes[i];
        let gx = (x / CELL_METERS) as usize;
        let gy = (y / CELL_METERS) as usize;
        gy * width + gx
    }

    /// Adjacency list over intersections.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        adj
    }
}

/// Survey outcome: the labeled subset of regions. Ground truth for all
/// regions remains in [`City::land_use`]; these are the labels a detector may
/// train on (paper Section VI-A "ground-truth collection").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SurveyLabels {
    /// Region ids labeled as urban villages.
    pub uv_regions: Vec<u32>,
    /// Region ids labeled as non-urban-villages.
    pub non_uv_regions: Vec<u32>,
}

impl SurveyLabels {
    pub fn num_labeled(&self) -> usize {
        self.uv_regions.len() + self.non_uv_regions.len()
    }
}

/// A fully generated synthetic city.
#[derive(Clone, Debug)]
pub struct City {
    pub height: usize,
    pub width: usize,
    /// Latent land use per region (row-major, `height*width`) — the ground
    /// truth labels derive from this.
    pub land_use: Vec<LandUse>,
    /// Observable generation profile per region — POIs and imagery derive
    /// from this (see [`RegionProfile`]).
    pub profiles: Vec<RegionProfile>,
    /// All POIs in the city.
    pub pois: Vec<Poi>,
    pub roads: RoadNetwork,
    /// Flattened region images, `n_regions * IMG_LEN`, values in [0, 1].
    pub images: Vec<f32>,
    pub labels: SurveyLabels,
    /// Seed used for generation (for reproducibility records).
    pub seed: u64,
    /// Human-readable preset name.
    pub name: String,
}

impl City {
    pub fn n_regions(&self) -> usize {
        self.height * self.width
    }

    /// Grid coordinates of a region id.
    pub fn region_xy(&self, r: usize) -> (usize, usize) {
        (r % self.width, r / self.width)
    }

    /// Region id from grid coordinates.
    pub fn region_at(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Center of a region in meters.
    pub fn region_center(&self, r: usize) -> (f64, f64) {
        let (x, y) = self.region_xy(r);
        (
            (x as f64 + 0.5) * CELL_METERS,
            (y as f64 + 0.5) * CELL_METERS,
        )
    }

    /// True iff the region's latent land use is an urban village.
    pub fn is_uv(&self, r: usize) -> bool {
        self.land_use[r].is_urban_village()
    }

    /// Total number of true urban-village regions in the city.
    pub fn n_true_uvs(&self) -> usize {
        self.land_use
            .iter()
            .filter(|l| l.is_urban_village())
            .count()
    }

    /// Image of region `r` as a flat `[f32; IMG_LEN]` slice.
    pub fn image(&self, r: usize) -> &[f32] {
        &self.images[r * IMG_LEN..(r + 1) * IMG_LEN]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poi_kind_mappings_cover_all_categories() {
        let mut seen = [false; PoiCategory::COUNT];
        for k in PoiKind::ALL {
            seen[k.category().index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "every category must have a kind");
    }

    #[test]
    fn poi_kind_mappings_cover_all_radius_types() {
        let mut seen = [false; RadiusType::COUNT];
        for k in PoiKind::ALL {
            if let Some(r) = k.radius_type() {
                seen[r.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn poi_kind_mappings_cover_all_facility_classes() {
        let mut seen = [false; FacilityClass::COUNT];
        for k in PoiKind::ALL {
            if let Some(f) = k.facility_class() {
                seen[f.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn poi_region_assignment() {
        let p = Poi {
            kind: PoiKind::Restaurant,
            x: 130.0,
            y: 260.0,
        };
        // x in cell 1, y in cell 2 of a width-10 grid -> region 21.
        assert_eq!(p.region(10), 21);
    }

    #[test]
    fn all_kinds_distinct_indices() {
        let mut idx: Vec<usize> = PoiKind::ALL.iter().map(|k| k.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), PoiKind::COUNT);
    }
}
