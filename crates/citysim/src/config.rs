//! City generation configuration and the three paper-analogue presets.

use serde::{Deserialize, Serialize};

/// All knobs of the synthetic city generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CityConfig {
    pub name: String,
    /// Grid height (regions).
    pub height: usize,
    /// Grid width (regions).
    pub width: usize,
    /// Number of city (sub)centers driving the density gradient.
    pub n_centers: usize,
    /// Number of urban-village patches to plant.
    pub n_uv_patches: usize,
    /// Min/max regions per UV patch.
    pub uv_patch_size: (usize, usize),
    /// Fraction of UV patches "discovered" by the survey (labeled).
    pub uv_discovery_rate: f64,
    /// Labeled non-UV regions per labeled UV region.
    pub non_uv_label_ratio: f64,
    /// Road lattice spacing in regions (smaller = denser roads).
    pub road_spacing: usize,
    /// Probability of keeping a lattice road segment.
    pub road_keep_prob: f64,
    /// Global POI density multiplier.
    pub poi_density: f64,
    /// Number of green/water patches.
    pub n_nature_patches: usize,
}

impl CityConfig {
    pub fn n_regions(&self) -> usize {
        self.height * self.width
    }
}

/// Paper-analogue city presets (scaled ≈1/25 in region count; see DESIGN.md).
/// Rank orderings mirror the real datasets: Beijing-like is largest with the
/// fewest labeled UVs, Fuzhou-like is smallest with the densest labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CityPreset {
    /// Analogue of Shenzhen (93,600 regions; 295 UVs; dense roads).
    ShenzhenLike,
    /// Analogue of Fuzhou (59,872 regions; 276 UVs).
    FuzhouLike,
    /// Analogue of Beijing (354,316 regions; 204 UVs; sparsest labels).
    BeijingLike,
}

impl CityPreset {
    pub const ALL: [CityPreset; 3] = [
        CityPreset::ShenzhenLike,
        CityPreset::FuzhouLike,
        CityPreset::BeijingLike,
    ];

    pub fn config(self) -> CityConfig {
        match self {
            CityPreset::ShenzhenLike => CityConfig {
                name: "shenzhen-like".into(),
                height: 36,
                width: 36,
                n_centers: 2,
                n_uv_patches: 20,
                uv_patch_size: (4, 10),
                uv_discovery_rate: 0.85,
                non_uv_label_ratio: 4.5,
                road_spacing: 2,
                road_keep_prob: 0.88,
                poi_density: 0.35,
                n_nature_patches: 5,
            },
            CityPreset::FuzhouLike => CityConfig {
                name: "fuzhou-like".into(),
                height: 30,
                width: 30,
                n_centers: 1,
                n_uv_patches: 17,
                uv_patch_size: (4, 10),
                uv_discovery_rate: 0.9,
                non_uv_label_ratio: 3.5,
                road_spacing: 2,
                road_keep_prob: 0.82,
                poi_density: 0.32,
                n_nature_patches: 4,
            },
            CityPreset::BeijingLike => CityConfig {
                name: "beijing-like".into(),
                height: 48,
                width: 48,
                n_centers: 3,
                n_uv_patches: 16,
                uv_patch_size: (4, 10),
                uv_discovery_rate: 0.8,
                non_uv_label_ratio: 8.0,
                road_spacing: 3,
                road_keep_prob: 0.85,
                poi_density: 0.28,
                n_nature_patches: 8,
            },
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CityPreset::ShenzhenLike => "shenzhen-like",
            CityPreset::FuzhouLike => "fuzhou-like",
            CityPreset::BeijingLike => "beijing-like",
        }
    }

    /// A miniature config for fast tests: same structure, ~300 regions.
    pub fn tiny() -> CityConfig {
        CityConfig {
            name: "tiny".into(),
            height: 18,
            width: 18,
            n_centers: 1,
            n_uv_patches: 7,
            uv_patch_size: (3, 7),
            uv_discovery_rate: 0.9,
            non_uv_label_ratio: 3.0,
            road_spacing: 2,
            road_keep_prob: 0.85,
            poi_density: 0.5,
            n_nature_patches: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_preserve_size_ordering() {
        // Beijing-like largest, Fuzhou-like smallest — as in Table I.
        let sz = CityPreset::ShenzhenLike.config().n_regions();
        let fz = CityPreset::FuzhouLike.config().n_regions();
        let bj = CityPreset::BeijingLike.config().n_regions();
        assert!(bj > sz && sz > fz);
    }

    #[test]
    fn beijing_has_sparsest_labels() {
        // Highest non-UV ratio and lowest discovery — hardest label regime.
        let bj = CityPreset::BeijingLike.config();
        for p in [CityPreset::ShenzhenLike, CityPreset::FuzhouLike] {
            let c = p.config();
            assert!(bj.non_uv_label_ratio > c.non_uv_label_ratio);
            assert!(bj.uv_discovery_rate <= c.uv_discovery_rate);
        }
    }
}
