//! Procedural "satellite" textures. Each region gets a 32×32 RGB image whose
//! block statistics are conditioned on its *observable profile*: inner urban
//! villages render as densely packed, small, irregular buildings separated
//! by narrow alleys — the visual signature the paper's VGG features exploit
//! — while downtown shows large regular blocks, and the confuser profiles
//! (`OldResidential`, `UvOuter`) deliberately sit between classes.

use crate::types::{RegionProfile, IMG_CHANNELS, IMG_LEN, IMG_SIZE};
use rand::rngs::SmallRng;
use rand::Rng;

/// Rendering parameters per profile.
struct Style {
    /// Background RGB.
    bg: [f32; 3],
    /// Mean building RGB.
    building: [f32; 3],
    /// Building color jitter.
    color_jitter: f32,
    /// Building side length range in pixels (0 disables buildings).
    block: (usize, usize),
    /// Gap between blocks in pixels.
    gap: usize,
    /// Positional jitter in pixels (irregularity).
    jitter: usize,
    /// Probability that a grid slot actually holds a building.
    fill: f64,
    /// Per-pixel background noise amplitude.
    noise: f32,
}

fn style(profile: RegionProfile) -> Style {
    match profile {
        RegionProfile::Downtown => Style {
            bg: [0.45, 0.45, 0.47],
            building: [0.66, 0.66, 0.69],
            color_jitter: 0.05,
            block: (9, 12),
            gap: 4,
            jitter: 0,
            fill: 0.92,
            noise: 0.015,
        },
        RegionProfile::Commercial => Style {
            bg: [0.4, 0.38, 0.36],
            building: [0.65, 0.6, 0.58],
            color_jitter: 0.12,
            block: (6, 9),
            gap: 3,
            jitter: 1,
            fill: 0.85,
            noise: 0.03,
        },
        RegionProfile::Residential => Style {
            bg: [0.42, 0.42, 0.4],
            building: [0.6, 0.55, 0.5],
            color_jitter: 0.06,
            block: (5, 7),
            gap: 2,
            jitter: 0,
            fill: 0.9,
            noise: 0.02,
        },
        // Confuser: between Residential and UvInner in block scale, gap,
        // irregularity and palette.
        RegionProfile::OldResidential => Style {
            bg: [0.21, 0.19, 0.17],
            building: [0.52, 0.47, 0.4],
            color_jitter: 0.23,
            block: (2, 4),
            gap: 1,
            jitter: 1,
            fill: 0.92,
            noise: 0.048,
        },
        RegionProfile::UvInner => Style {
            bg: [0.2, 0.18, 0.16],
            building: [0.52, 0.47, 0.4],
            color_jitter: 0.24,
            block: (2, 4),
            gap: 1,
            jitter: 1,
            fill: 0.94,
            noise: 0.05,
        },
        // Peripheral UV: small informal blocks but lower coverage on a
        // greenish background — reads like dense suburb.
        RegionProfile::UvOuter => Style {
            bg: [0.34, 0.42, 0.29],
            building: [0.54, 0.5, 0.44],
            color_jitter: 0.13,
            block: (3, 5),
            gap: 4,
            jitter: 2,
            fill: 0.5,
            noise: 0.042,
        },
        RegionProfile::Industrial => Style {
            bg: [0.45, 0.45, 0.47],
            building: [0.55, 0.6, 0.68],
            color_jitter: 0.05,
            block: (10, 14),
            gap: 5,
            jitter: 1,
            fill: 0.7,
            noise: 0.02,
        },
        RegionProfile::Suburb => Style {
            bg: [0.34, 0.43, 0.29],
            building: [0.54, 0.5, 0.44],
            color_jitter: 0.12,
            block: (3, 5),
            gap: 4,
            jitter: 2,
            fill: 0.45,
            noise: 0.04,
        },
        RegionProfile::Green => Style {
            bg: [0.2, 0.45, 0.22],
            building: [0.0, 0.0, 0.0],
            color_jitter: 0.0,
            block: (0, 0),
            gap: 0,
            jitter: 0,
            fill: 0.0,
            noise: 0.06,
        },
        RegionProfile::Water => Style {
            bg: [0.15, 0.25, 0.5],
            building: [0.0, 0.0, 0.0],
            color_jitter: 0.0,
            block: (0, 0),
            gap: 0,
            jitter: 0,
            fill: 0.0,
            noise: 0.015,
        },
    }
}

/// Render one region image into `out` (length [`IMG_LEN`], channel-major,
/// values clamped to [0, 1]).
pub fn render_region(profile: RegionProfile, rng: &mut SmallRng, out: &mut [f32]) {
    assert_eq!(out.len(), IMG_LEN);
    let st = style(profile);

    // Background with per-pixel noise (shared across channels for a
    // luminance-like texture).
    for y in 0..IMG_SIZE {
        for x in 0..IMG_SIZE {
            let n = (rng.gen::<f32>() - 0.5) * 2.0 * st.noise;
            for c in 0..IMG_CHANNELS {
                out[c * IMG_SIZE * IMG_SIZE + y * IMG_SIZE + x] = (st.bg[c] + n).clamp(0.0, 1.0);
            }
        }
    }

    // Buildings on a jittered grid.
    if st.block.1 > 0 {
        let pitch = st.block.1 + st.gap;
        let mut gy = 0usize;
        while gy + st.block.0 <= IMG_SIZE {
            let mut gx = 0usize;
            while gx + st.block.0 <= IMG_SIZE {
                if rng.gen::<f64>() < st.fill {
                    let bw = rng.gen_range(st.block.0..=st.block.1);
                    let bh = rng.gen_range(st.block.0..=st.block.1);
                    let jx = if st.jitter > 0 {
                        rng.gen_range(0..=st.jitter)
                    } else {
                        0
                    };
                    let jy = if st.jitter > 0 {
                        rng.gen_range(0..=st.jitter)
                    } else {
                        0
                    };
                    let x0 = (gx + jx).min(IMG_SIZE - 1);
                    let y0 = (gy + jy).min(IMG_SIZE - 1);
                    let x1 = (x0 + bw).min(IMG_SIZE);
                    let y1 = (y0 + bh).min(IMG_SIZE);
                    let tint = (rng.gen::<f32>() - 0.5) * 2.0 * st.color_jitter;
                    for c in 0..IMG_CHANNELS {
                        let col = (st.building[c] + tint).clamp(0.0, 1.0);
                        for py in y0..y1 {
                            for px in x0..x1 {
                                out[c * IMG_SIZE * IMG_SIZE + py * IMG_SIZE + px] = col;
                            }
                        }
                    }
                }
                gx += pitch;
            }
            gy += pitch;
        }
    }
}

/// Render every region of a profile map into one flat buffer.
pub fn render_city(profiles: &[RegionProfile], rng: &mut SmallRng) -> Vec<f32> {
    let mut out = vec![0.0f32; profiles.len() * IMG_LEN];
    for (r, &p) in profiles.iter().enumerate() {
        render_region(p, rng, &mut out[r * IMG_LEN..(r + 1) * IMG_LEN]);
    }
    out
}

/// Mean squared horizontal gradient of the green channel — a cheap
/// "texture frequency" statistic used by tests to verify that urban-village
/// imagery is busier than downtown imagery.
pub fn texture_energy(img: &[f32]) -> f32 {
    let plane = &img[IMG_SIZE * IMG_SIZE..2 * IMG_SIZE * IMG_SIZE];
    let mut e = 0.0f32;
    for y in 0..IMG_SIZE {
        for x in 0..IMG_SIZE - 1 {
            let d = plane[y * IMG_SIZE + x + 1] - plane[y * IMG_SIZE + x];
            e += d * d;
        }
    }
    e / (IMG_SIZE * (IMG_SIZE - 1)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const ALL_PROFILES: [RegionProfile; 10] = [
        RegionProfile::Downtown,
        RegionProfile::Commercial,
        RegionProfile::Residential,
        RegionProfile::OldResidential,
        RegionProfile::UvInner,
        RegionProfile::UvOuter,
        RegionProfile::Industrial,
        RegionProfile::Suburb,
        RegionProfile::Green,
        RegionProfile::Water,
    ];

    fn render(p: RegionProfile, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = vec![0.0; IMG_LEN];
        render_region(p, &mut rng, &mut out);
        out
    }

    #[test]
    fn pixels_in_unit_range() {
        for p in ALL_PROFILES {
            let img = render(p, 1);
            assert!(img.iter().all(|v| (0.0..=1.0).contains(v)), "{p:?}");
        }
    }

    #[test]
    fn uv_texture_busier_than_downtown() {
        let avg = |p: RegionProfile| -> f32 {
            (0..8).map(|s| texture_energy(&render(p, s))).sum::<f32>() / 8.0
        };
        assert!(
            avg(RegionProfile::UvInner) > 1.5 * avg(RegionProfile::Downtown),
            "UV texture should be higher-frequency than downtown"
        );
    }

    #[test]
    fn old_residential_between_residential_and_uv_inner() {
        let avg = |p: RegionProfile| -> f32 {
            (0..8).map(|s| texture_energy(&render(p, s))).sum::<f32>() / 8.0
        };
        let res = avg(RegionProfile::Residential);
        let old = avg(RegionProfile::OldResidential);
        let uv = avg(RegionProfile::UvInner);
        assert!(res < old && old < uv, "ordering {res} {old} {uv}");
    }

    #[test]
    fn water_is_blue_green_is_green() {
        let water = render(RegionProfile::Water, 2);
        let green = render(RegionProfile::Green, 2);
        let plane = IMG_SIZE * IMG_SIZE;
        let mean = |img: &[f32], c: usize| -> f32 {
            img[c * plane..(c + 1) * plane].iter().sum::<f32>() / plane as f32
        };
        assert!(
            mean(&water, 2) > mean(&water, 0),
            "water should be blue-dominant"
        );
        assert!(
            mean(&green, 1) > mean(&green, 2),
            "greenspace should be green-dominant"
        );
    }

    #[test]
    fn render_city_fills_all_regions() {
        let profiles = vec![RegionProfile::Residential; 5];
        let mut rng = SmallRng::seed_from_u64(3);
        let out = render_city(&profiles, &mut rng);
        assert_eq!(out.len(), 5 * IMG_LEN);
        for r in 0..5 {
            let img = &out[r * IMG_LEN..(r + 1) * IMG_LEN];
            assert!(img.iter().any(|&p| p > 0.1));
        }
    }

    #[test]
    fn rendering_deterministic() {
        assert_eq!(
            render(RegionProfile::UvInner, 7),
            render(RegionProfile::UvInner, 7)
        );
    }
}
