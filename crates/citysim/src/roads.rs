//! Road network generation: a jittered lattice of intersections with lattice
//! streets, radial arterials from the primary center, and deliberately poor
//! internal connectivity inside urban villages (whose narrow alleys are not
//! part of the formal road network).

use crate::config::CityConfig;
use crate::landuse::LandUseMap;
use crate::types::{LandUse, RoadNetwork, CELL_METERS};
use rand::rngs::SmallRng;
use rand::Rng;

/// Generate the city's road network.
pub fn generate_roads(cfg: &CityConfig, map: &LandUseMap, rng: &mut SmallRng) -> RoadNetwork {
    let (w, h) = (cfg.width, cfg.height);
    let s = cfg.road_spacing.max(1);
    let gw = w / s;
    let gh = h / s;

    // Lattice intersections with jitter; some lattice slots stay empty
    // (water almost always, urban villages often — the formal grid skirts
    // them).
    let mut node_at = vec![None::<u32>; gw * gh];
    let mut nodes: Vec<(f64, f64)> = Vec::new();
    for gy in 0..gh {
        for gx in 0..gw {
            let rx = (gx * s).min(w - 1);
            let ry = (gy * s).min(h - 1);
            let lu = map.cells[ry * w + rx];
            let keep = match lu {
                LandUse::Water => 0.05,
                LandUse::GreenSpace => 0.4,
                LandUse::UrbanVillage => 0.7,
                _ => 0.97,
            };
            if rng.gen::<f64>() < keep {
                let x = (rx as f64 + rng.gen::<f64>()) * CELL_METERS;
                let y = (ry as f64 + rng.gen::<f64>()) * CELL_METERS;
                node_at[gy * gw + gx] = Some(nodes.len() as u32);
                nodes.push((x, y));
            }
        }
    }

    // Lattice streets between 4-adjacent intersections.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for gy in 0..gh {
        for gx in 0..gw {
            let Some(a) = node_at[gy * gw + gx] else {
                continue;
            };
            for (nx, ny) in [(gx + 1, gy), (gx, gy + 1)] {
                if nx >= gw || ny >= gh {
                    continue;
                }
                let Some(b) = node_at[ny * gw + nx] else {
                    continue;
                };
                // Streets through urban villages are sparser.
                let ar = region_of(nodes[a as usize], w);
                let br = region_of(nodes[b as usize], w);
                let through_uv = map.cells[ar] == LandUse::UrbanVillage
                    || map.cells[br] == LandUse::UrbanVillage;
                let p = if through_uv {
                    cfg.road_keep_prob * 0.8
                } else {
                    cfg.road_keep_prob
                };
                if rng.gen::<f64>() < p {
                    edges.push((a, b));
                }
            }
        }
    }

    // Radial arterials: connect rings of intersections toward the primary
    // center, creating the long-range functional correlations the road
    // connectivity edges of the URG are meant to capture.
    if let Some(&(cx, cy)) = map.centers.first() {
        let center_gx = ((cx / s as f64) as usize).min(gw.saturating_sub(1));
        let center_gy = ((cy / s as f64) as usize).min(gh.saturating_sub(1));
        for dir in 0..8 {
            let angle = dir as f64 * std::f64::consts::PI / 4.0;
            let (dx, dy) = (angle.cos(), angle.sin());
            let mut prev: Option<u32> = node_at[center_gy * gw + center_gx];
            let mut t = 1.0;
            loop {
                let gx = (center_gx as f64 + dx * t).round();
                let gy = (center_gy as f64 + dy * t).round();
                if gx < 0.0 || gy < 0.0 || gx as usize >= gw || gy as usize >= gh {
                    break;
                }
                if let Some(b) = node_at[gy as usize * gw + gx as usize] {
                    if let Some(a) = prev {
                        if a != b {
                            edges.push((a, b));
                        }
                    }
                    prev = Some(b);
                }
                t += 1.0;
            }
        }
    }

    edges.sort_unstable();
    edges.dedup();
    RoadNetwork { nodes, edges }
}

fn region_of((x, y): (f64, f64), width: usize) -> usize {
    let gx = (x / CELL_METERS) as usize;
    let gy = (y / CELL_METERS) as usize;
    gy * width + gx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityPreset;
    use crate::landuse::generate_land_use;
    use rand::SeedableRng;

    fn make(seed: u64) -> (CityConfig, LandUseMap, RoadNetwork) {
        let cfg = CityPreset::tiny();
        let mut rng = SmallRng::seed_from_u64(seed);
        let map = generate_land_use(&cfg, &mut rng);
        let roads = generate_roads(&cfg, &map, &mut rng);
        (cfg, map, roads)
    }

    #[test]
    fn roads_nonempty_and_in_bounds() {
        let (cfg, _, roads) = make(1);
        assert!(roads.nodes.len() > 10);
        assert!(roads.edges.len() > 10);
        let (wm, hm) = (
            cfg.width as f64 * CELL_METERS,
            cfg.height as f64 * CELL_METERS,
        );
        for &(x, y) in &roads.nodes {
            assert!(x >= 0.0 && x < wm && y >= 0.0 && y < hm);
        }
        for &(a, b) in &roads.edges {
            assert!((a as usize) < roads.nodes.len() && (b as usize) < roads.nodes.len());
            assert_ne!(a, b, "no self-loop road segments");
        }
    }

    #[test]
    fn edges_deduplicated() {
        let (_, _, roads) = make(2);
        let mut e = roads.edges.clone();
        e.sort_unstable();
        e.dedup();
        assert_eq!(e.len(), roads.edges.len());
    }

    #[test]
    fn largest_component_is_dominant() {
        // The formal road grid should be mostly connected.
        let (_, _, roads) = make(3);
        let adj = roads.adjacency();
        let n = roads.nodes.len();
        let mut comp = vec![usize::MAX; n];
        let mut best = 0usize;
        let mut c = 0usize;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut size = 0usize;
            let mut stack = vec![start as u32];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                size += 1;
                for &u in &adj[v as usize] {
                    if comp[u as usize] == usize::MAX {
                        comp[u as usize] = c;
                        stack.push(u);
                    }
                }
            }
            best = best.max(size);
            c += 1;
        }
        assert!(best * 2 > n, "largest component {best} of {n}");
    }

    #[test]
    fn roads_deterministic() {
        let (_, _, a) = make(9);
        let (_, _, b) = make(9);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.nodes.len(), b.nodes.len());
    }
}
