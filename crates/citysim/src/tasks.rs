//! Downstream-task label plumbing.
//!
//! The generator already knows every region's latent land use
//! ([`crate::landuse`]); this module exposes it in the form the
//! downstream-task heads consume: dense per-region class indices over
//! [`LandUse::ALL`]. Ground truth here is *latent* generator state — the
//! detection pipeline never sees it at training time, but the frozen-
//! embedding tasks may, exactly like the paper's auxiliary land-use data.

use crate::types::{City, LandUse};

/// Number of land-use classes (the full [`LandUse::ALL`] palette).
pub const LAND_USE_CLASSES: usize = LandUse::ALL.len();

/// Per-region land-use class indices (row-major, `height*width`), the
/// label vector of the land-use classification task.
pub fn land_use_classes(city: &City) -> Vec<u8> {
    city.land_use.iter().map(|&l| l.index() as u8).collect()
}

/// Per-class region counts — handy for majority-baseline accuracy and for
/// verifying a split covers every class.
pub fn land_use_histogram(city: &City) -> [usize; LAND_USE_CLASSES] {
    let mut h = [0usize; LAND_USE_CLASSES];
    for &l in &city.land_use {
        h[l.index()] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityPreset;

    #[test]
    fn land_use_index_roundtrips() {
        for (i, &l) in LandUse::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(LandUse::from_index(i), Some(l));
        }
        assert_eq!(LandUse::from_index(LAND_USE_CLASSES), None);
    }

    #[test]
    fn labels_cover_every_region_and_match_ground_truth() {
        let city = City::from_config(CityPreset::tiny(), 9);
        let labels = land_use_classes(&city);
        assert_eq!(labels.len(), city.n_regions());
        let uv = LandUse::UrbanVillage.index() as u8;
        for (r, &c) in labels.iter().enumerate() {
            assert!((c as usize) < LAND_USE_CLASSES);
            assert_eq!(c == uv, city.is_uv(r));
        }
        let hist = land_use_histogram(&city);
        assert_eq!(hist.iter().sum::<usize>(), city.n_regions());
        assert_eq!(hist[uv as usize], city.n_true_uvs());
    }
}
