//! Latent land-use map generation: a center-based density gradient perturbed
//! by value noise, nature patches, and urban-village patches planted in the
//! downtown–suburb transition ring.
//!
//! UV patches come in two archetypes — inner-city and peripheral — so the
//! city exhibits the "diverse urban patterns" challenge the paper's
//! master-slave design targets.

use crate::config::CityConfig;
use crate::noise::ValueNoise;
use crate::types::{LandUse, RegionProfile};
use rand::rngs::SmallRng;
use rand::Rng;

/// Output of land-use generation.
#[derive(Clone, Debug)]
pub struct LandUseMap {
    pub cells: Vec<LandUse>,
    /// Region ids of each urban-village patch (contiguous blob).
    pub uv_patches: Vec<Vec<u32>>,
    /// City (sub)center positions in grid coordinates.
    pub centers: Vec<(f64, f64)>,
    /// Normalized distance-to-center field in [0, 1] per region.
    pub centrality: Vec<f64>,
}

/// Generate the land-use map for a city configuration.
pub fn generate_land_use(cfg: &CityConfig, rng: &mut SmallRng) -> LandUseMap {
    let (w, h) = (cfg.width, cfg.height);
    let n = w * h;

    // City centers: primary near the middle, subcenters in the inner 60%.
    let mut centers = Vec::with_capacity(cfg.n_centers);
    centers.push((
        w as f64 * rng.gen_range(0.42..0.58),
        h as f64 * rng.gen_range(0.42..0.58),
    ));
    for _ in 1..cfg.n_centers {
        centers.push((
            w as f64 * rng.gen_range(0.2..0.8),
            h as f64 * rng.gen_range(0.2..0.8),
        ));
    }

    let zone_noise = ValueNoise::new(w, h, (w as f64 / 6.0).max(2.0), rng);
    let mix_noise = ValueNoise::new(w, h, (w as f64 / 12.0).max(2.0), rng);

    // Normalized, noise-perturbed distance to the nearest center.
    let half_diag = ((w * w + h * h) as f64).sqrt() / 2.0;
    let mut centrality = vec![0.0f64; n];
    for y in 0..h {
        for x in 0..w {
            let d = centers
                .iter()
                .map(|&(cx, cy)| ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min)
                / half_diag;
            let nudge = 0.25 * (zone_noise.sample(x as f64, y as f64) - 0.5);
            centrality[y * w + x] = (d + nudge).clamp(0.0, 1.0);
        }
    }

    // Base zoning by centrality + mixing noise.
    let mut cells = vec![LandUse::Suburb; n];
    for y in 0..h {
        for x in 0..w {
            let r = y * w + x;
            let dd = centrality[r];
            let mix = mix_noise.sample(x as f64, y as f64);
            cells[r] = if dd < 0.12 {
                LandUse::DowntownCore
            } else if dd < 0.30 {
                if mix < 0.5 {
                    LandUse::Commercial
                } else {
                    LandUse::Residential
                }
            } else if dd < 0.60 {
                if mix < 0.62 {
                    LandUse::Residential
                } else {
                    LandUse::Industrial
                }
            } else if mix < 0.25 {
                LandUse::Residential
            } else {
                LandUse::Suburb
            };
        }
    }

    // Nature patches (half green, half water), grown as random blobs.
    for i in 0..cfg.n_nature_patches {
        let kind = if i % 2 == 0 {
            LandUse::GreenSpace
        } else {
            LandUse::Water
        };
        let seed = rng.gen_range(0..n);
        let size = rng.gen_range(5..20);
        for r in grow_blob(seed, size, w, h, rng) {
            cells[r as usize] = kind;
        }
    }

    // Urban-village patches. Seeds live in the transition ring; roughly a
    // third are inner-city UVs (denser fabric), the rest peripheral. Every
    // patch must be anchored near employment (industrial or downtown fabric
    // within Chebyshev distance 2–4): urban villages form where migrant
    // workers find jobs. This anchoring is the key *relational* signal — it
    // is outside the 3×3 feature window, but road-connectivity edges carry
    // it to graph models, separating true UVs from old-residential
    // look-alikes (which are placed independently of employment).
    let mut uv_patches = Vec::with_capacity(cfg.n_uv_patches);
    let mut attempts = 0;
    while uv_patches.len() < cfg.n_uv_patches && attempts < cfg.n_uv_patches * 60 {
        attempts += 1;
        let seed = rng.gen_range(0..n);
        let dd = centrality[seed];
        let inner = uv_patches.len() % 3 == 0;
        let range = if inner { 0.14..0.40 } else { 0.35..0.85 };
        if !range.contains(&dd) {
            continue;
        }
        if matches!(
            cells[seed],
            LandUse::Water | LandUse::GreenSpace | LandUse::UrbanVillage
        ) {
            continue;
        }
        if !near_employment(&cells, seed, w, h, 2, 4) {
            continue;
        }
        let size = rng.gen_range(cfg.uv_patch_size.0..=cfg.uv_patch_size.1);
        // Grow around water and existing UV cells (filtering *during*
        // growth keeps the patch contiguous).
        let blob = grow_blob_where(seed, size, w, h, rng, |r| {
            !matches!(cells[r], LandUse::Water | LandUse::UrbanVillage)
        });
        if blob.len() < cfg.uv_patch_size.0 {
            continue;
        }
        for &r in &blob {
            cells[r as usize] = LandUse::UrbanVillage;
        }
        uv_patches.push(blob);
    }

    LandUseMap {
        cells,
        uv_patches,
        centers,
        centrality,
    }
}

/// Derive the *observable* generation profile of every region from the
/// ground-truth land use. Urban-village patches pick an archetype by their
/// mean centrality (inner vs. peripheral); a slice of formal residential and
/// commercial fabric becomes spatially-clustered "old residential" (a
/// UV-look-alike confuser); a few UV regions are "upgraded" and render as
/// old residential. POIs and imagery are generated from these profiles while
/// labels stay tied to the land use — the overlap is irreducible by design.
pub fn derive_profiles(
    cfg: &CityConfig,
    map: &LandUseMap,
    rng: &mut SmallRng,
) -> Vec<RegionProfile> {
    let (w, h) = (cfg.width, cfg.height);
    let age_noise = ValueNoise::new(w, h, (w as f64 / 8.0).max(2.0), rng);
    let mut profiles: Vec<RegionProfile> = map
        .cells
        .iter()
        .enumerate()
        .map(|(r, &lu)| {
            let (x, y) = (r % w, r / w);
            let age = age_noise.sample(x as f64, y as f64);
            match lu {
                LandUse::DowntownCore => RegionProfile::Downtown,
                LandUse::Commercial => {
                    if age > 0.76 {
                        RegionProfile::OldResidential
                    } else {
                        RegionProfile::Commercial
                    }
                }
                LandUse::Residential => {
                    if age > 0.62 {
                        RegionProfile::OldResidential
                    } else {
                        RegionProfile::Residential
                    }
                }
                // Archetype is overwritten patch-wise below.
                LandUse::UrbanVillage => RegionProfile::UvInner,
                LandUse::Industrial => RegionProfile::Industrial,
                LandUse::Suburb => RegionProfile::Suburb,
                LandUse::GreenSpace => RegionProfile::Green,
                LandUse::Water => RegionProfile::Water,
            }
        })
        .collect();

    // One archetype per UV patch (whole settlements share a character), with
    // a small fraction of regions "upgraded" to formal-looking fabric.
    for patch in &map.uv_patches {
        let mean_centrality: f64 = patch
            .iter()
            .map(|&r| map.centrality[r as usize])
            .sum::<f64>()
            / patch.len() as f64;
        let archetype = if mean_centrality < 0.42 {
            RegionProfile::UvInner
        } else {
            RegionProfile::UvOuter
        };
        for &r in patch {
            profiles[r as usize] = if rng.gen::<f64>() < 0.12 {
                RegionProfile::OldResidential
            } else {
                archetype
            };
        }
    }
    profiles
}

/// True iff a region has employment fabric (industrial or downtown core)
/// within Chebyshev distance `[lo, hi]` — but *not* closer than `lo`, so the
/// signal stays outside the immediate 3×3 feature window.
pub fn near_employment(
    cells: &[LandUse],
    r: usize,
    w: usize,
    h: usize,
    lo: usize,
    hi: usize,
) -> bool {
    let (x, y) = (r % w, r / w);
    let is_employment = |lu: LandUse| matches!(lu, LandUse::Industrial | LandUse::DowntownCore);
    // Reject anything with employment adjacent (distance < lo).
    let mut nearest = usize::MAX;
    for dy in -(hi as i64)..=(hi as i64) {
        for dx in -(hi as i64)..=(hi as i64) {
            let (nx, ny) = (x as i64 + dx, y as i64 + dy);
            if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                continue;
            }
            if is_employment(cells[ny as usize * w + nx as usize]) {
                let d = dx.unsigned_abs().max(dy.unsigned_abs()) as usize;
                nearest = nearest.min(d);
            }
        }
    }
    nearest >= lo && nearest <= hi
}

/// Grow a contiguous random blob of up to `size` regions from `seed`,
/// 4-connected. Returns the member region ids (always contains `seed`).
pub fn grow_blob(seed: usize, size: usize, w: usize, h: usize, rng: &mut SmallRng) -> Vec<u32> {
    grow_blob_where(seed, size, w, h, rng, |_| true)
}

/// As [`grow_blob`] but only admitting cells satisfying `admit` (the seed is
/// always included). Filtering during growth keeps the blob contiguous.
pub fn grow_blob_where(
    seed: usize,
    size: usize,
    w: usize,
    h: usize,
    rng: &mut SmallRng,
    admit: impl Fn(usize) -> bool,
) -> Vec<u32> {
    let mut members = vec![seed as u32];
    let mut in_blob = vec![false; w * h];
    in_blob[seed] = true;
    let mut frontier: Vec<u32> = neighbors4(seed, w, h).collect();
    while members.len() < size && !frontier.is_empty() {
        let i = rng.gen_range(0..frontier.len());
        let r = frontier.swap_remove(i) as usize;
        if in_blob[r] || !admit(r) {
            continue;
        }
        in_blob[r] = true;
        members.push(r as u32);
        frontier.extend(neighbors4(r, w, h).filter(|&q| !in_blob[q as usize]));
    }
    members
}

/// 4-connected neighbours of region `r` in a `w×h` grid.
pub fn neighbors4(r: usize, w: usize, h: usize) -> impl Iterator<Item = u32> {
    let (x, y) = (r % w, r / w);
    let mut out = Vec::with_capacity(4);
    if x > 0 {
        out.push((r - 1) as u32);
    }
    if x + 1 < w {
        out.push((r + 1) as u32);
    }
    if y > 0 {
        out.push((r - w) as u32);
    }
    if y + 1 < h {
        out.push((r + w) as u32);
    }
    out.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityPreset;
    use rand::SeedableRng;

    #[test]
    fn uv_patches_are_marked_and_contiguous() {
        let cfg = CityPreset::tiny();
        let mut rng = SmallRng::seed_from_u64(3);
        let map = generate_land_use(&cfg, &mut rng);
        assert!(!map.uv_patches.is_empty());
        for patch in &map.uv_patches {
            for &r in patch {
                assert_eq!(map.cells[r as usize], LandUse::UrbanVillage);
            }
            // Contiguity: BFS within the patch reaches every member.
            let set: std::collections::HashSet<u32> = patch.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![patch[0]];
            seen.insert(patch[0]);
            while let Some(r) = stack.pop() {
                for q in neighbors4(r as usize, cfg.width, cfg.height) {
                    if set.contains(&q) && seen.insert(q) {
                        stack.push(q);
                    }
                }
            }
            assert_eq!(seen.len(), patch.len(), "patch not contiguous");
        }
    }

    #[test]
    fn downtown_is_central() {
        let cfg = CityPreset::ShenzhenLike.config();
        let mut rng = SmallRng::seed_from_u64(11);
        let map = generate_land_use(&cfg, &mut rng);
        let mean_centrality = |lu: LandUse| {
            let (mut s, mut c) = (0.0, 0usize);
            for (r, &l) in map.cells.iter().enumerate() {
                if l == lu {
                    s += map.centrality[r];
                    c += 1;
                }
            }
            s / c.max(1) as f64
        };
        assert!(mean_centrality(LandUse::DowntownCore) < mean_centrality(LandUse::Suburb));
    }

    #[test]
    fn grow_blob_respects_size_and_membership() {
        let mut rng = SmallRng::seed_from_u64(5);
        let blob = grow_blob(55, 8, 10, 10, &mut rng);
        assert!(blob.len() <= 8 && !blob.is_empty());
        assert!(blob.contains(&55));
        let uniq: std::collections::HashSet<_> = blob.iter().collect();
        assert_eq!(uniq.len(), blob.len());
    }

    #[test]
    fn land_use_deterministic() {
        let cfg = CityPreset::tiny();
        let a = generate_land_use(&cfg, &mut SmallRng::seed_from_u64(9));
        let b = generate_land_use(&cfg, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.uv_patches, b.uv_patches);
    }

    #[test]
    fn neighbors4_edge_cases() {
        let corner: Vec<u32> = neighbors4(0, 5, 5).collect();
        assert_eq!(corner.len(), 2);
        let center: Vec<u32> = neighbors4(12, 5, 5).collect();
        assert_eq!(center.len(), 4);
    }
}
