//! Lattice value noise used to perturb zoning boundaries so land-use regions
//! have organic shapes rather than concentric rings.

use rand::rngs::SmallRng;
use rand::Rng;

/// Smooth 2-D value noise: random values on a coarse lattice, bilinearly
/// interpolated. Output range is [0, 1].
#[derive(Clone, Debug)]
pub struct ValueNoise {
    grid_w: usize,
    grid_h: usize,
    cell: f64,
    values: Vec<f64>,
}

impl ValueNoise {
    /// Noise over a `width × height` domain with lattice spacing `cell`.
    pub fn new(width: usize, height: usize, cell: f64, rng: &mut SmallRng) -> Self {
        assert!(cell > 0.0);
        let grid_w = (width as f64 / cell).ceil() as usize + 2;
        let grid_h = (height as f64 / cell).ceil() as usize + 2;
        let values = (0..grid_w * grid_h).map(|_| rng.gen::<f64>()).collect();
        ValueNoise {
            grid_w,
            grid_h,
            cell,
            values,
        }
    }

    /// Sample the noise field at `(x, y)`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = (x / self.cell).max(0.0);
        let fy = (y / self.cell).max(0.0);
        let ix = (fx as usize).min(self.grid_w - 2);
        let iy = (fy as usize).min(self.grid_h - 2);
        let tx = smoothstep(fx - ix as f64);
        let ty = smoothstep(fy - iy as f64);
        let v00 = self.values[iy * self.grid_w + ix];
        let v10 = self.values[iy * self.grid_w + ix + 1];
        let v01 = self.values[(iy + 1) * self.grid_w + ix];
        let v11 = self.values[(iy + 1) * self.grid_w + ix + 1];
        let a = v00 + (v10 - v00) * tx;
        let b = v01 + (v11 - v01) * tx;
        a + (b - a) * ty
    }
}

fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noise_in_unit_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = ValueNoise::new(30, 30, 5.0, &mut rng);
        for y in 0..30 {
            for x in 0..30 {
                let v = n.sample(x as f64, y as f64);
                assert!((0.0..=1.0).contains(&v), "noise {v} out of range");
            }
        }
    }

    #[test]
    fn noise_is_continuous() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = ValueNoise::new(20, 20, 4.0, &mut rng);
        // Nearby samples differ by a small amount (bilinear smoothness).
        for i in 0..100 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            let d = (n.sample(x, y) - n.sample(x + 0.05, y)).abs();
            assert!(d < 0.1, "jump {d}");
        }
    }

    #[test]
    fn noise_deterministic_per_seed() {
        let a = ValueNoise::new(10, 10, 3.0, &mut SmallRng::seed_from_u64(7));
        let b = ValueNoise::new(10, 10, 3.0, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a.sample(4.3, 2.2).to_bits(), b.sample(4.3, 2.2).to_bits());
    }
}
