//! Peak high-water-mark gate for the counting allocator: `live_bytes` must
//! fall when buffers are dropped while `peak_bytes` keeps the high-water
//! mark, and `reset_peak` must rebase the peak onto the current live total.
//!
//! Installs [`uvd_obs::alloc::CountingAlloc`] as this binary's global
//! allocator; it is the only test in the binary so no concurrent test can
//! allocate inside the measured windows.

use uvd_obs::alloc::{live_bytes, peak_bytes, reset_peak};

#[global_allocator]
static GLOBAL: uvd_obs::alloc::CountingAlloc = uvd_obs::alloc::CountingAlloc;

#[test]
fn peak_tracks_high_water_and_resets() {
    reset_peak();
    let base_live = live_bytes();
    let base_peak = peak_bytes();
    assert!(base_peak >= base_live);

    const BIG: usize = 8 << 20; // 8 MiB, far above incidental test-harness noise
    {
        let buf = vec![0u8; BIG];
        assert!(
            live_bytes() >= base_live + BIG,
            "live bytes must include the 8 MiB buffer"
        );
        // Touch the buffer so the allocation cannot be optimized out.
        assert_eq!(buf[BIG - 1], 0);
    }
    // Buffer dropped: live falls back, peak remembers it.
    assert!(
        live_bytes() < base_live + BIG,
        "live bytes must drop after the buffer is freed"
    );
    assert!(
        peak_bytes() >= base_peak + BIG,
        "peak must retain the 8 MiB high-water mark"
    );

    // Rebasing drops the old peak; a smaller burst then sets a smaller one.
    reset_peak();
    assert!(peak_bytes() < base_peak + BIG);
    let small = vec![0u8; 1 << 20];
    assert!(peak_bytes() >= live_bytes());
    drop(small);

    // Realloc growth is tracked through the same live/peak counters.
    reset_peak();
    let before_grow = peak_bytes();
    let mut v: Vec<u8> = Vec::with_capacity(1 << 10);
    v.resize(4 << 20, 1);
    assert!(
        peak_bytes() >= before_grow + (4 << 20) - (1 << 10),
        "realloc growth must raise the peak"
    );
    drop(v);
}
