//! Multi-threaded JSONL sink integrity: every record lands as one atomic
//! write, so a trace produced by many concurrent span writers (the
//! `uvd-serve` worker pool) must contain only complete, parseable lines.
//!
//! Lives in its own integration-test process because the recorder is
//! process-global.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_span_writers_emit_only_valid_json_lines() {
    let dir = std::env::temp_dir().join("uvd_obs_concurrent");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
    uvd_obs::set_jsonl(&path).expect("jsonl sink");

    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 200;
    static BUMPS: uvd_obs::Counter = uvd_obs::Counter::new("test.concurrent.bumps");
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let emitted = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let emitted = Arc::clone(&emitted);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..SPANS_PER_THREAD {
                    {
                        let _s = uvd_obs::span("test.concurrent")
                            .field("thread", t as f64)
                            .field("i", i as f64);
                    }
                    BUMPS.add(1);
                    emitted.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    uvd_obs::disable(); // flushes counters and the sink
    let text = std::fs::read_to_string(&path).expect("trace file");
    let mut span_lines = 0usize;
    for (no, line) in text.lines().enumerate() {
        assert!(!line.is_empty(), "blank line {no} in trace");
        let v = serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("line {no} is not valid JSON ({e:?}): {line:?}"));
        match v.get("type").and_then(|t| t.as_str()) {
            Some("span") => span_lines += 1,
            Some("counter") => {}
            other => panic!("line {no} has unexpected type {other:?}"),
        }
    }
    assert_eq!(
        span_lines,
        emitted.load(Ordering::Relaxed),
        "every span drop must produce exactly one complete line"
    );
    assert!(
        text.lines()
            .any(|l| l.contains("\"name\":\"test.concurrent.bumps\"")),
        "counter snapshot missing"
    );
    let _ = std::fs::remove_file(&path);
}
