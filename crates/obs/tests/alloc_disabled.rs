//! Disabled-path allocation gate: with the recorder off, span guards and
//! counter bumps must never touch the heap. This is the contract that lets
//! the instrumentation live inside hot kernels (`Plan::replay`, GEMM packing)
//! without a feature flag.
//!
//! The test installs [`uvd_obs::alloc::CountingAlloc`] as the process global
//! allocator and diffs the allocation count around a burst of span/counter
//! activity. It is the only test in this binary, so no concurrent test can
//! allocate inside the measured window.

use uvd_obs::alloc::allocations;

#[global_allocator]
static GLOBAL: uvd_obs::alloc::CountingAlloc = uvd_obs::alloc::CountingAlloc;

static HITS: uvd_obs::Counter = uvd_obs::Counter::new("test.alloc_disabled.hits");

#[test]
fn disabled_recorder_spans_and_counters_never_allocate() {
    // Programmatic off: deterministic regardless of the ambient UVD_TRACE.
    uvd_obs::disable();
    assert!(!uvd_obs::enabled());

    // Warm-up round so any lazy one-time setup outside the measured
    // contract (e.g. lock init) happens before the window.
    {
        let mut s = uvd_obs::span("warmup").field("k", 1.0);
        s.add_field("k2", 2.0);
        HITS.add(1);
    }

    let before = allocations();
    for i in 0..1000u64 {
        let mut s = uvd_obs::span("hot.section").field("i", i as f64);
        s.add_field("extra", 0.5);
        HITS.add(1);
        drop(s);
        let _plain = uvd_obs::span("hot.unfielded");
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "disabled-path span/counter activity allocated {} times",
        after - before
    );
    // Bumps must not have accumulated either — the counter was off.
    assert_eq!(HITS.get(), 0, "disabled counter must stay at zero");
}
