//! Lightweight observability layer for the UVD stack: RAII span timers and
//! monotonic counters behind a single global recorder.
//!
//! ## Gating
//!
//! The recorder is off by default and is switched on either by the
//! `UVD_TRACE` environment variable (read lazily, once) or programmatically:
//!
//! | `UVD_TRACE`    | effect                                               |
//! |----------------|------------------------------------------------------|
//! | unset / `0`    | disabled                                             |
//! | `1`            | in-memory aggregation (query via [`span_summary`])   |
//! | `jsonl:<path>` | aggregation **plus** one JSON record per span/counter |
//! | anything else  | disabled, with a one-shot warning on stderr          |
//!
//! The hot path is built so that instrumenting a kernel costs a single
//! relaxed atomic load when tracing is disabled: [`span`] returns a guard
//! whose timestamp is `None` and whose `Drop` is a branch on that `None`;
//! [`Counter::add`] early-returns before touching its cell. Neither path
//! allocates, so instrumented code keeps the steady-state zero-allocation
//! replay guarantee (gated by `crates/tensor/tests/alloc_replay.rs`).
//!
//! ## JSONL schema
//!
//! One object per line. Spans:
//! `{"type":"span","name":..,"start_us":..,"dur_us":..,"thread":..,"fields":{..}}`
//! — `start_us` is microseconds since the recorder was enabled. Span records
//! are flushed to the file as they are written, so a traced process that
//! exits (or dies) without calling [`flush`] still leaves a complete span
//! trail. Counters are emitted as a snapshot on [`flush`] / [`disable`]:
//! `{"type":"counter","name":..,"value":..}`.
//!
//! Tests and tools that need tracing regardless of the environment call
//! [`set_memory`] / [`set_jsonl`] and [`disable`] directly; those override
//! whatever `UVD_TRACE` said (last call wins, process-wide).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod alloc;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state recorder flag: 0 = not yet initialised from the environment,
/// 1 = off, 2 = on. Everything hot loads this once with relaxed ordering.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is the recorder currently on? One relaxed load in the steady state; the
/// first call per process may parse `UVD_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => init_from_env() == STATE_ON,
        s => s == STATE_ON,
    }
}

#[cold]
fn init_from_env() -> u8 {
    let mut rec = recorder().lock().expect("obs recorder poisoned");
    // Another thread may have initialised while we waited on the lock.
    let cur = STATE.load(Ordering::Relaxed);
    if cur != STATE_UNINIT {
        return cur;
    }
    let state = match std::env::var("UVD_TRACE") {
        Err(_) => STATE_OFF,
        Ok(v) => match v.trim() {
            "" | "0" => STATE_OFF,
            "1" => {
                *rec = Some(Recorder::new(None));
                STATE_ON
            }
            s => {
                if let Some(path) = s.strip_prefix("jsonl:") {
                    match File::create(path) {
                        Ok(f) => {
                            *rec = Some(Recorder::new(Some(BufWriter::new(f))));
                            STATE_ON
                        }
                        Err(e) => {
                            warn_once(
                                "UVD_TRACE",
                                &format!("UVD_TRACE: cannot create '{path}': {e}; tracing off"),
                            );
                            STATE_OFF
                        }
                    }
                } else {
                    warn_once(
                        "UVD_TRACE",
                        &format!(
                            "UVD_TRACE: unrecognized value '{s}' \
                             (accepted: 0, 1, jsonl:<path>); tracing off"
                        ),
                    );
                    STATE_OFF
                }
            }
        },
    };
    STATE.store(state, Ordering::Relaxed);
    state
}

struct Recorder {
    /// Zero point for `start_us` timestamps.
    epoch: Instant,
    sink: Option<BufWriter<File>>,
    /// Per-name aggregation: (name, count, total duration ns). Span names are
    /// a small static taxonomy, so linear search beats a hash map here.
    spans: Vec<(&'static str, u64, u64)>,
}

impl Recorder {
    fn new(sink: Option<BufWriter<File>>) -> Self {
        Recorder {
            epoch: Instant::now(),
            sink,
            spans: Vec::new(),
        }
    }
}

fn recorder() -> &'static Mutex<Option<Recorder>> {
    static REC: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    REC.get_or_init(|| Mutex::new(None))
}

/// Enable tracing with in-memory aggregation only (no file output),
/// overriding `UVD_TRACE`. Resets previously aggregated spans.
pub fn set_memory() {
    let mut rec = recorder().lock().expect("obs recorder poisoned");
    *rec = Some(Recorder::new(None));
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Enable tracing with a JSONL sink at `path` (truncates an existing file),
/// overriding `UVD_TRACE`. Resets previously aggregated spans.
pub fn set_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    let f = File::create(path)?;
    let mut rec = recorder().lock().expect("obs recorder poisoned");
    *rec = Some(Recorder::new(Some(BufWriter::new(f))));
    STATE.store(STATE_ON, Ordering::Relaxed);
    Ok(())
}

/// Turn the recorder off (flushing a JSONL sink first), overriding
/// `UVD_TRACE`. Subsequent spans/counter bumps cost one relaxed load.
pub fn disable() {
    flush();
    let mut rec = recorder().lock().expect("obs recorder poisoned");
    *rec = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// Write counter snapshot records and flush the JSONL sink, if any. No-op
/// when the recorder is off.
pub fn flush() {
    if !enabled() {
        return;
    }
    let mut rec = recorder().lock().expect("obs recorder poisoned");
    let Some(r) = rec.as_mut() else { return };
    if let Some(sink) = r.sink.as_mut() {
        // Assemble the whole snapshot into one buffer and write it with a
        // single `write_all` — same atomic-record discipline as span drops.
        let mut lines = String::new();
        for c in counter_registry().lock().expect("counter registry").iter() {
            lines.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(c.name),
                c.get()
            ));
        }
        let _ = sink.write_all(lines.as_bytes());
        let _ = sink.flush();
    }
}

/// Clear aggregated span statistics and zero every registered counter. The
/// recorder mode (off / memory / jsonl) is left as-is.
pub fn reset() {
    let mut rec = recorder().lock().expect("obs recorder poisoned");
    if let Some(r) = rec.as_mut() {
        r.spans.clear();
        r.epoch = Instant::now();
    }
    for c in counter_registry().lock().expect("counter registry").iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Maximum number of key/value fields a span can carry; extra fields are
/// dropped. Fields live inline in the guard so attaching them never allocates.
pub const MAX_FIELDS: usize = 6;

/// RAII span timer: created by [`span`], records its duration on drop. When
/// the recorder is off the guard holds no timestamp and its drop is a branch
/// on `None` — no clock read, no lock, no allocation.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: [(&'static str, f64); MAX_FIELDS],
    n_fields: u8,
}

/// Start a span named `name`. Names form a small static taxonomy
/// (`"cmsf.master"`, `"eval.fit"`, …) documented in DESIGN.md §10.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
        fields: [("", 0.0); MAX_FIELDS],
        n_fields: 0,
    }
}

impl Span {
    /// Attach a key/value field (builder form). Silently dropped beyond
    /// [`MAX_FIELDS`] or when the recorder is off.
    #[inline]
    pub fn field(mut self, key: &'static str, value: f64) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attach a key/value field in place.
    #[inline]
    pub fn add_field(&mut self, key: &'static str, value: f64) {
        if self.start.is_none() {
            return;
        }
        let i = self.n_fields as usize;
        if i < MAX_FIELDS {
            self.fields[i] = (key, value);
            self.n_fields += 1;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let mut rec = recorder().lock().expect("obs recorder poisoned");
        let Some(r) = rec.as_mut() else { return };
        let dur_ns = dur.as_nanos() as u64;
        match r.spans.iter_mut().find(|(n, _, _)| *n == self.name) {
            Some(slot) => {
                slot.1 += 1;
                slot.2 += dur_ns;
            }
            None => r.spans.push((self.name, 1, dur_ns)),
        }
        if let Some(sink) = r.sink.as_mut() {
            let start_us = start.duration_since(r.epoch).as_micros() as u64;
            let mut line = format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"thread\":{}",
                escape(self.name),
                start_us,
                dur_ns / 1_000,
                thread_ord(),
            );
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields[..self.n_fields as usize].iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                line.push_str(&escape(k));
                line.push_str("\":");
                push_json_number(&mut line, *v);
            }
            line.push_str("}}\n");
            // The record — newline included — goes down in a single
            // `write_all` while the recorder mutex is held, so concurrent
            // span drops can never interleave partial lines, and the flush
            // keeps span records on disk even for a process that exits (or
            // panics) without calling `flush()`. Tracing-on is never the
            // timed path.
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.flush();
        }
    }
}

/// Aggregated statistics for one span name.
#[derive(Clone, Debug)]
pub struct SpanStat {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
}

/// Snapshot of per-name span aggregates, in first-seen order. Empty when the
/// recorder is off.
pub fn span_summary() -> Vec<SpanStat> {
    let rec = recorder().lock().expect("obs recorder poisoned");
    rec.as_ref()
        .map(|r| {
            r.spans
                .iter()
                .map(|&(name, count, total_ns)| SpanStat {
                    name,
                    count,
                    total_ns,
                })
                .collect()
        })
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter, meant to live in a `static`:
///
/// ```
/// static PACK_HIT: uvd_obs::Counter = uvd_obs::Counter::new("gemm.pack_hit");
/// PACK_HIT.add(1);
/// ```
///
/// `add` is a no-op (one relaxed load) while the recorder is off; the first
/// enabled bump registers the counter in the global registry so it shows up
/// in [`counter_summary`] and flush snapshots.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicU8,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicU8::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value (live even when the recorder is off, though bumps only
    /// accumulate while it is on).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[cold]
    fn register(&'static self) {
        if self.registered.swap(1, Ordering::Relaxed) == 0 {
            counter_registry()
                .lock()
                .expect("counter registry")
                .push(self);
        }
    }
}

fn counter_registry() -> &'static Mutex<Vec<&'static Counter>> {
    static REG: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot of one counter.
#[derive(Clone, Debug)]
pub struct CounterStat {
    pub name: &'static str,
    pub value: u64,
}

/// Values of every counter that has ever been bumped while the recorder was
/// on, in registration order.
pub fn counter_summary() -> Vec<CounterStat> {
    counter_registry()
        .lock()
        .expect("counter registry")
        .iter()
        .map(|c| CounterStat {
            name: c.name,
            value: c.get(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// One-shot warnings
// ---------------------------------------------------------------------------

/// Print `msg` to stderr at most once per `key` for the process lifetime.
/// Active regardless of the trace mode — this is how misconfigured `UVD_*`
/// environment variables surface instead of being silently ignored.
pub fn warn_once(key: &'static str, msg: &str) {
    static WARNED: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let reg = WARNED.get_or_init(|| Mutex::new(Vec::new()));
    let mut w = reg.lock().expect("warn registry");
    if w.contains(&key) {
        return;
    }
    w.push(key);
    eprintln!("uvd: warning: {msg}");
    WARNED_KEYS_LEN.store(w.len(), Ordering::Relaxed);
}

static WARNED_KEYS_LEN: AtomicUsize = AtomicUsize::new(0);

/// Number of distinct warning keys emitted so far (test hook).
pub fn warnings_emitted() -> usize {
    WARNED_KEYS_LEN.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Small dense process-local thread ordinal (std's `ThreadId` has no stable
/// numeric accessor).
fn thread_ord() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORD: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORD.with(|o| *o)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; map non-finite field values to null.
fn push_json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        // Integers (epoch numbers, counts) print without a fraction; that is
        // still a valid JSON number.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests that flip its mode serialize on
    // this lock so `cargo test`'s threaded runner cannot interleave them.
    fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        match L.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn memory_mode_aggregates_spans() {
        let _g = mode_lock();
        set_memory();
        {
            let _s = span("test.outer").field("k", 2.0);
            let _inner = span("test.inner");
        }
        {
            let _s = span("test.outer");
        }
        let summary = span_summary();
        let outer = summary
            .iter()
            .find(|s| s.name == "test.outer")
            .expect("outer aggregated");
        assert_eq!(outer.count, 2);
        assert!(summary.iter().any(|s| s.name == "test.inner"));
        disable();
    }

    #[test]
    fn disabled_spans_and_counters_record_nothing() {
        let _g = mode_lock();
        set_memory();
        reset();
        disable();
        static C: Counter = Counter::new("test.disabled_counter");
        C.add(5);
        {
            let _s = span("test.disabled_span").field("x", 1.0);
        }
        assert_eq!(C.get(), 0);
        assert!(span_summary().is_empty());
    }

    #[test]
    fn counters_accumulate_when_enabled() {
        let _g = mode_lock();
        set_memory();
        static C: Counter = Counter::new("test.enabled_counter");
        let before = C.get();
        C.add(3);
        C.add(4);
        assert_eq!(C.get(), before + 7);
        assert!(counter_summary()
            .iter()
            .any(|c| c.name == "test.enabled_counter"));
        disable();
    }

    #[test]
    fn jsonl_sink_writes_span_and_counter_records() {
        let _g = mode_lock();
        let dir = std::env::temp_dir().join("uvd_obs_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.jsonl");
        set_jsonl(&path).expect("sink");
        {
            let _s = span("test.jsonl").field("epoch", 3.0).field("loss", 0.5);
        }
        static C: Counter = Counter::new("test.jsonl_counter");
        C.add(9);
        disable(); // flushes
        let text = std::fs::read_to_string(&path).expect("trace file");
        assert!(text
            .lines()
            .any(|l| l.contains("\"type\":\"span\"") && l.contains("\"name\":\"test.jsonl\"")));
        assert!(text.lines().any(|l| l.contains("\"epoch\":3")));
        assert!(text
            .lines()
            .any(|l| l.contains("\"type\":\"counter\"")
                && l.contains("\"name\":\"test.jsonl_counter\"")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn field_capacity_is_bounded() {
        let _g = mode_lock();
        set_memory();
        let mut s = span("test.capacity");
        for i in 0..(MAX_FIELDS + 3) {
            s.add_field("k", i as f64);
        }
        assert_eq!(s.n_fields as usize, MAX_FIELDS);
        drop(s);
        disable();
    }

    #[test]
    fn warn_once_dedups_by_key() {
        let before = warnings_emitted();
        warn_once("test.warn_key", "first");
        warn_once("test.warn_key", "second");
        assert_eq!(warnings_emitted(), before + 1);
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_fields_serialize_as_null() {
        let mut s = String::new();
        push_json_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        push_json_number(&mut s, 2.5);
        assert_eq!(s, "2.5");
    }
}
