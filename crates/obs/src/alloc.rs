//! Reusable counting allocator for zero-allocation regression gates and
//! peak-memory accounting.
//!
//! A binary opts in by installing it as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: uvd_obs::alloc::CountingAlloc = uvd_obs::alloc::CountingAlloc;
//! ```
//!
//! [`allocations`] then reports the number of `alloc`/`realloc` calls made by
//! the whole process so far; gates diff it around a steady-state section and
//! assert the delta is zero. `dealloc` is deliberately not counted — freeing
//! warm-up buffers during a measured section is harmless.
//!
//! The allocator additionally tracks the number of *live* heap bytes and
//! their high-water mark: [`live_bytes`] is the current outstanding total,
//! [`peak_bytes`] the largest value it has ever reached (since process start
//! or the last [`reset_peak`]). The scaling harness and the streaming smoke
//! gate use the peak to assert that tile-streamed construction and sampled
//! mini-batch training stay within a fixed memory budget. All counters are
//! relaxed atomics — the peak is maintained with a `fetch_max`, so
//! concurrent allocations can only ever under-report transiently, never
//! over-report.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn track_grow(bytes: usize) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn track_shrink(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// Pass-through wrapper over the system allocator that counts allocation
/// events (`alloc` and `realloc`) and tracks live/peak heap bytes in
/// relaxed atomics.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let p = System.alloc(layout);
        if !p.is_null() {
            track_grow(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        track_shrink(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Old block released, new block live (System.realloc freed it).
            track_shrink(layout.size());
            track_grow(new_size);
        }
        p
    }
}

/// Total allocation events since process start (0 unless [`CountingAlloc`]
/// is installed as the global allocator).
pub fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Currently outstanding heap bytes (0 unless [`CountingAlloc`] is
/// installed as the global allocator).
pub fn live_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Reset the peak to the current live total, so a measured section reports
/// its own high-water mark instead of inheriting start-up allocations.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}
