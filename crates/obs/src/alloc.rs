//! Reusable counting allocator for zero-allocation regression gates.
//!
//! A binary opts in by installing it as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: uvd_obs::alloc::CountingAlloc = uvd_obs::alloc::CountingAlloc;
//! ```
//!
//! [`allocations`] then reports the number of `alloc`/`realloc` calls made by
//! the whole process so far; gates diff it around a steady-state section and
//! assert the delta is zero. `dealloc` is deliberately not counted — freeing
//! warm-up buffers during a measured section is harmless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// Pass-through wrapper over the system allocator that counts allocation
/// events (`alloc` and `realloc`) in a relaxed atomic.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events since process start (0 unless [`CountingAlloc`]
/// is installed as the global allocator).
pub fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}
