//! Sequence helpers: the workspace only uses `SliceRandom::shuffle`.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly pick a reference to one element, `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
