//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` cannot be fetched from a registry. This crate implements the
//! exact API surface the workspace uses — `SmallRng`, `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom::shuffle` — on top
//! of a xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic given a seed, which is all the workspace relies on; they are
//! *not* bit-compatible with upstream `rand 0.8`.

pub mod rngs;
pub mod seq;

/// Core trait: everything is derived from a `u64` source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's standard domain
    /// (`[0, 1)` for floats, the full range for integers, fair for bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding trait; only `seed_from_u64` is used by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform draw over an interval. Mirrors upstream rand's
/// `SampleUniform` so that the blanket [`SampleRange`] impls below drive
/// type inference the same way (a `Range<T>` determines `T` directly).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` if `!inclusive`, `[lo, hi]` otherwise.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Uniform draw from `[0, span)` without caring about modulo bias beyond
/// a single widening multiply (Lemire's method, no rejection loop — the
/// bias is < 2^-64 relative, far below anything the workspace observes).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = rng.gen_range(0usize..5);
            seen[i] = true;
            let j = rng.gen_range(0u32..=4);
            assert!(j <= 4);
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
