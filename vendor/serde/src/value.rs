//! The JSON-like tree model shared by `serde` and `serde_json`.

/// A JSON value. Objects keep insertion order so serialized records are
/// stable and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}
