//! The JSON-like tree model shared by `serde` and `serde_json`.

/// A JSON value. Objects keep insertion order so serialized records are
/// stable and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable lookup of a key in an object value.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a key in an object value, preserving insertion
    /// order for existing keys (replaced in place, appended otherwise).
    /// Panics on non-object values — a read-modify-write against the wrong
    /// shape is a caller bug, not data.
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Object(fields) = self else {
            panic!("Value::set on non-object value");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => fields.push((key.to_string(), value)),
        }
    }
}
