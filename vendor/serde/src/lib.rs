//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot be
//! fetched. This crate provides value-model serialization: [`Serialize`]
//! converts a type into a JSON-like [`Value`] tree and [`Deserialize`]
//! rebuilds the type from one. The companion `serde_derive` proc-macro crate
//! derives both for plain structs with named fields and unit-variant enums —
//! the only shapes this workspace serializes. `serde_json` (also vendored)
//! renders and parses `Value` as JSON text.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Error produced when a [`Value`] cannot be converted into the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Value`] tree model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] tree model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Convenience: serialize any value (used by the `json!` macro).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

// ----- primitive impls ----------------------------------------------------

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error(format!("expected 3-element array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
