//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s value-model [`Serialize`]/[`Deserialize`]
//! traits. Because the registry is unreachable (no `syn`/`quote`), the item
//! is parsed directly from the `proc_macro` token stream. Two shapes are
//! supported — exactly the shapes this workspace serializes:
//!
//! * structs with named fields (serialized as a JSON object), and
//! * enums whose variants are all unit variants (serialized as the variant
//!   name string).
//!
//! Anything else produces a `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

/// Skip `#[...]` attribute groups (including expanded doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub` / `pub(crate)` style visibility.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde_derive"
            ));
        }
        other => {
            return Err(format!(
                "expected braced body for `{name}` (tuple/unit types unsupported), found {other:?}"
            ));
        }
    };

    let body: Vec<TokenTree> = body.into_iter().collect();
    if kind == "struct" {
        let mut fields = Vec::new();
        let mut j = 0;
        while j < body.len() {
            j = skip_vis(&body, skip_attrs(&body, j));
            if j >= body.len() {
                break;
            }
            let field = match &body[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => return Err(format!("expected field name in `{name}`, found {other:?}")),
            };
            j += 1;
            match body.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
                other => {
                    return Err(format!(
                        "expected `:` after `{name}.{field}`, found {other:?}"
                    ))
                }
            }
            // Consume the type: everything to the next comma at angle depth 0.
            let mut depth = 0i32;
            while j < body.len() {
                match &body[j] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            fields.push(field);
        }
        Ok(Item::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body.len() {
            j = skip_attrs(&body, j);
            if j >= body.len() {
                break;
            }
            let variant = match &body[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => return Err(format!("expected variant in `{name}`, found {other:?}")),
            };
            j += 1;
            match body.get(j) {
                None => {}
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    // Skip an explicit discriminant.
                    j += 1;
                    while j < body.len() {
                        if let TokenTree::Punct(p) = &body[j] {
                            if p.as_char() == ',' {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                Some(TokenTree::Group(_)) => {
                    return Err(format!(
                        "variant `{name}::{variant}` carries data; only unit variants are supported"
                    ));
                }
                other => {
                    return Err(format!(
                        "unexpected token after `{name}::{variant}`: {other:?}"
                    ))
                }
            }
            variants.push(variant);
        }
        Ok(Item::Enum { name, variants })
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{inserts}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get({f:?}).ok_or_else(|| \
                             ::serde::Error(concat!(\"missing field `\", {f:?}, \"`\").to_string()))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {builds} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error(format!(\n\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
