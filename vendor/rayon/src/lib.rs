//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the real `rayon` cannot be
//! fetched from a registry. This crate implements the small surface the
//! workspace's parallel runtime (`uvd_tensor::par`) is built on:
//!
//! * [`scope`] — structured fork/join: tasks spawned inside the scope borrow
//!   from the enclosing stack frame and are guaranteed to finish before
//!   `scope` returns.
//! * [`current_num_threads`] — the machine's available parallelism.
//!
//! Tasks run on a lazily-grown **persistent worker pool** (workers park on a
//! condvar between jobs), so per-call dispatch cost is microseconds rather
//! than the ~100µs of spawning fresh OS threads. While a scope waits for its
//! tasks it *helps* by draining the shared queue, so the spawning thread is
//! never idle and nested scopes cannot deadlock the pool.
//!
//! Deliberate differences from upstream: [`Scope::spawn`] takes a plain
//! `FnOnce()` (no re-entrant `&Scope` argument), there is no work stealing
//! beyond the shared queue, and no `par_iter` adapters — the workspace's
//! `par` module layers its own partitioning on top.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Number of hardware threads available to the process.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        cv: Condvar::new(),
    })
}

impl Pool {
    /// Make sure at least `want` workers exist (bounded; workers persist for
    /// the life of the process and park between jobs).
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(64);
        let mut st = self.state.lock().expect("pool lock");
        while st.workers < want {
            st.workers += 1;
            std::thread::Builder::new()
                .name(format!("rayon-worker-{}", st.workers))
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool lock");
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    st = self.cv.wait(st).expect("pool wait");
                }
            };
            job();
        }
    }

    fn push(&self, job: Job) {
        self.state.lock().expect("pool lock").queue.push_back(job);
        self.cv.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.state.lock().expect("pool lock").queue.pop_front()
    }
}

/// Completion latch shared between a scope and its spawned jobs.
struct Latch {
    state: Mutex<(usize, bool)>, // (pending jobs, any panicked)
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        })
    }

    fn add(&self) {
        self.state.lock().expect("latch lock").0 += 1;
    }

    fn done(&self, panicked: bool) {
        let mut st = self.state.lock().expect("latch lock");
        st.0 -= 1;
        st.1 |= panicked;
        if st.0 == 0 {
            self.cv.notify_all();
        }
    }

    /// Wait for all jobs, helping drain the shared queue meanwhile. Returns
    /// whether any job panicked.
    fn wait_helping(&self, pool: &'static Pool) -> bool {
        loop {
            {
                let st = self.state.lock().expect("latch lock");
                if st.0 == 0 {
                    return st.1;
                }
            }
            if let Some(job) = pool.try_pop() {
                job();
                continue;
            }
            let st = self.state.lock().expect("latch lock");
            if st.0 == 0 {
                return st.1;
            }
            // Short timed wait: a queued job (possibly from another scope)
            // may arrive that this thread should help with.
            let _ = self
                .cv
                .wait_timeout(st, Duration::from_micros(200))
                .expect("latch wait");
        }
    }
}

/// Handle for spawning tasks that may borrow from the enclosing frame.
pub struct Scope<'scope> {
    latch: Arc<Latch>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task onto the pool. The closure may borrow anything that
    /// outlives the enclosing [`scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add();
        let latch = self.latch.clone();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope` blocks on the latch before returning (even if the
        // scope body panics), so every borrow captured by `job` outlives its
        // execution; the latch itself is owned via `Arc`, not borrowed.
        let job: Job = unsafe { std::mem::transmute(job) };
        pool().push(Box::new(move || {
            let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
            latch.done(panicked);
        }));
    }
}

/// Structured fork/join: run `f`, wait for everything it spawned, then return
/// `f`'s result. Panics if any spawned task panicked.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let latch = Latch::new();
    let s = Scope {
        latch: latch.clone(),
        _marker: std::marker::PhantomData,
    };
    pool().ensure_workers(current_num_threads().max(2) - 1);
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    let task_panicked = latch.wait_helping(pool());
    match result {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(r) => {
            if task_panicked {
                panic!("a task spawned in rayon::scope panicked");
            }
            r
        }
    }
}

/// Grow the pool so `n` concurrent tasks can actually run in parallel
/// (used when callers override the thread count above the core count).
pub fn ensure_pool_size(n: usize) {
    pool().ensure_workers(n.max(1) - 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_tasks_all_run_and_borrow_stack() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_returns_value_after_tasks() {
        let mut parts = [0u64; 8];
        let sum: u64 = scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.spawn(move || *p = i as u64 + 1);
            }
            42
        });
        assert_eq!(sum, 42);
        // All writes are visible after scope returns.
        assert_eq!(parts.iter().sum::<u64>(), 36);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let total = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn task_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        });
        assert!(r.is_err());
    }
}
