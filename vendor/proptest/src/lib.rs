//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset the workspace uses:
//! the [`proptest!`] macro, range and tuple strategies, `collection::vec`,
//! `prop::bool::ANY`, [`Just`], `prop_map`, `ProptestConfig::with_cases` and
//! the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test's module path and name (fully deterministic, no persistence
//! file), and failing cases are *not* shrunk — the assertion failure
//! reports the case index so a failure can be replayed by rerunning the
//! same test binary.

/// Deterministic per-test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Value generator. The workspace's strategies are stateless, so `generate`
/// borrows immutably and may be called once per test case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed `usize` or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Fair coin strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Full bit-space numeric strategies (`prop::num::f32::ANY`): every bit
    //! pattern is reachable, so NaN, ±inf and subnormals are generated too.

    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Any `f32` bit pattern, non-finite values included.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// `prop::num::f32::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = core::primitive::f32;

            fn generate(&self, rng: &mut TestRng) -> core::primitive::f32 {
                core::primitive::f32::from_bits(rng.next_u64() as u32)
            }
        }
    }

    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Any `f64` bit pattern, non-finite values included.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// `prop::num::f64::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = core::primitive::f64;

            fn generate(&self, rng: &mut TestRng) -> core::primitive::f64 {
                core::primitive::f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// The `prop::` namespace used inside tests (`prop::bool::ANY`, ...).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::num;
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($p,)+) = ($($crate::Strategy::generate(&($s), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuple_and_vec(
            v in crate::collection::vec((0u32..5, prop::bool::ANY), 0..12),
            (a, b) in (0u8..4, 0u8..4).prop_map(|(x, y)| (x + 1, y + 1)),
        ) {
            prop_assert!(v.len() < 12);
            prop_assert!(v.iter().all(|&(x, _)| x < 5));
            prop_assert!((1..=4).contains(&a) && (1..=4).contains(&b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        let s = 0.0f64..1.0;
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r1).to_bits(), s.generate(&mut r2).to_bits());
        }
    }
}
