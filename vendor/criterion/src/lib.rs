//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate keeps the same API shape
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`/`bench_with_input`) and measures wall-clock time with
//! adaptive batching; it reports min/mean per-iteration times on stdout.
//! No statistics beyond that — the repository's committed perf record is
//! produced by `bench/src/bin/perfsnap.rs`, which does its own timing.
//!
//! CLI behavior: a positional argument filters benchmarks by substring
//! (like criterion), and `--test` runs every benchmark body exactly once
//! (what `cargo test --benches` passes).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and registry; one per bench binary.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmark a closure under `name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if self.selected(name) {
            let mut b = Bencher {
                test_mode: self.test_mode,
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
                report: None,
            };
            f(&mut b);
            b.print(name);
        }
        self
    }

    /// Start a named group; benchmark ids are prefixed with `group/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// Display-only benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        if self.c.selected(&name) {
            let mut b = Bencher {
                test_mode: self.c.test_mode,
                sample_size: self.c.sample_size,
                measurement_time: self.c.measurement_time,
                report: None,
            };
            f(&mut b, input);
            b.print(&name);
        }
        self
    }

    pub fn finish(self) {}
}

/// Timing report of one benchmark: (iterations, min, mean).
struct Report {
    iters: u64,
    min: Duration,
    mean: Duration,
}

/// Runs and times the measured closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            self.report = Some(Report {
                iters: 1,
                min: Duration::ZERO,
                mean: Duration::ZERO,
            });
            return;
        }
        // Calibrate a batch size aiming at ~10 batches per sample window,
        // so per-batch timer overhead is negligible.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / first.as_secs_f64()).min(1e7) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters = 1u64;
        let mut min = first;
        let mut sampled = 0usize;
        while sampled < self.sample_size && total < self.measurement_time {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            min = min.min(dt / batch as u32);
            total += dt;
            iters += batch;
            sampled += 1;
        }
        self.report = Some(Report {
            iters,
            min,
            mean: Duration::from_secs_f64(total.as_secs_f64() / iters.max(1) as f64),
        });
    }

    fn print(&self, name: &str) {
        match &self.report {
            Some(r) if self.test_mode => {
                println!("{name}: ok ({} iter, test mode)", r.iters);
            }
            Some(r) => {
                println!(
                    "{name:<44} time: [min {} mean {}] ({} iters)",
                    fmt_duration(r.min),
                    fmt_duration(r.mean),
                    r.iters
                );
            }
            None => println!("{name}: no measurement recorded"),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_report() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        c.test_mode = false;
        c.filter = None;
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        c.test_mode = true;
        c.filter = None;
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        g.finish();
    }
}
