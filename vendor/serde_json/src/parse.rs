//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::{Error, Value};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
