//! Offline stand-in for `serde_json` over the vendored `serde` value model.
//!
//! Provides `to_string`, `to_string_pretty`, `from_str` and the `json!`
//! macro — the API surface this workspace uses.

pub use serde::{Error, Value};

mod parse;

pub use parse::from_str_value;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = from_str_value(s)?;
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// Exact comparison is deliberate: it asks "does this f64 hold an integer
// value", not "are two computed results close".
#[allow(clippy::float_cmp)]
fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is what serde_json emits for them when
        // arbitrary precision is off and the caller opted into lossy floats.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(item, out, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Only the shapes the
/// workspace uses are supported: object literals with literal keys, and
/// plain expressions.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), ::serde::to_value(&$val))),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$(::serde::to_value(&$val)),*])
    };
    (null) => { $crate::Value::Null };
    ($val:expr) => { ::serde::to_value(&$val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = json!({ "name": "uv", "count": 3usize, "score": 0.5f64 });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"name":"uv","count":3,"score":0.5}"#);
        let back = from_str_value(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({ "a": 1u32 });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parses_nested() {
        let v: Value = from_str(r#" {"xs": [1, 2.5, -3e2], "t": true, "n": null} "#).unwrap();
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        match v.get("xs") {
            Some(Value::Array(xs)) => {
                assert_eq!(xs[2], Value::Num(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::Str("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str_value("{toast").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("").is_err());
    }
}
