#!/usr/bin/env bash
# Repository gate: formatting, lints as errors, full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
# Zero-allocation replay regression gate: steady-state epochs must not
# touch the heap (counting global allocator; release, single-threaded).
cargo test -p uvd-tensor --release --test alloc_replay -q
