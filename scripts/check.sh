#!/usr/bin/env bash
# Repository gate: formatting, lints as errors, full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
