#!/usr/bin/env bash
# Repository gate: formatting, lints as errors, full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
# float_cmp is denied on top of warnings: exact == on floats is how the
# non-finite bugs this repo guards against slip back in.
cargo clippy --workspace --all-targets -- -D warnings -D clippy::float_cmp
cargo test --workspace -q
# Zero-allocation replay regression gate: steady-state epochs must not
# touch the heap (counting global allocator; release, single-threaded).
cargo test -p uvd-tensor --release --test alloc_replay -q
# Graceful-degradation gate in release mode: debug_assert-free builds must
# also record faulted (seed, fold) units instead of panicking.
cargo test -p uvd-eval --release --test fault_injection -q
# Fast-math gate in release mode: the FMA tier must stay within rounding
# tolerance of the deterministic oracle (and bit-stable across threads)
# when the env var — not just the test-local override — selects it.
UVD_FAST_MATH=1 cargo test -p uvd-tensor --release --test fastmath_tiers -q
# Build-path determinism gate in release mode: the parallel URG build
# (dense, and streamed through the pipelined render/fold path) must be
# bitwise identical to the serial build at every swept thread count.
# Release matters here: debug builds never hit the vectorized kernels the
# parallel feature extraction dispatches to.
cargo test -p uvd-urg --release --test par_build -q
# Bench harness must keep compiling even when nobody runs it.
cargo bench --workspace --no-run -q
# Release perfsnap smoke passes, one per determinism tier: exercise the
# packed GEMM tiers (deterministic and FMA), the fused replay path, and
# the e2e fold end to end without rewriting the committed
# BENCH_tensor.json numbers.
cargo run --release -p uvd-bench --bin perfsnap -q -- --smoke
UVD_FAST_MATH=1 cargo run --release -p uvd-bench --bin perfsnap -q -- --smoke
# Tracing smoke: one eval fold with UVD_TRACE=jsonl:<tmp>, validating the
# emitted records against the expected span/counter set and reconciling
# stage durations against wall time (within 10%).
cargo run --release -p uvd-bench --bin trace_smoke -q
# Streaming smoke: the 50k-region scaling city through the tile path
# (CityStream -> ShardedUrg) plus two neighbor-sampled master epochs,
# asserting peak heap stays under the streaming budget (less than the
# monolithic imagery buffer alone) and that the JSONL trace carries the
# urg.shard.build and cmsf.sample spans.
cargo run --release -p uvd-bench --bin scaling -q -- --smoke
# Resident-service smoke: 100 concurrent score requests plus poisoned
# inputs (one malformed line, one out-of-bounds region id) against an
# in-process uvd-serve. Zero panics, every reply valid JSON, the OOB id
# answered with the typed sampler error, and the serve.request /
# serve.batch span taxonomy present in the JSONL trace.
cargo run --release -p uvd-bench --bin serve_smoke -q
# Embedding-store smoke: pretrain the tiny city, export the frozen
# embeddings, train all three downstream heads, persist one UVDT0002
# store, reload it and assert the reloaded head scores (and the served
# "tasks" op) are bitwise identical to the in-memory ones. Leaves the
# committed BENCH_tensor.json untouched (the tasks row comes from
# --record runs).
cargo run --release -p uvd-bench --bin tasks_smoke -q
