#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the JSON records under results/.

Run after ./run_experiments.sh. Rewrites the '## Measured' blocks of
EXPERIMENTS.md in place from results/*.json.
"""
import json
import os

R = os.path.join(os.path.dirname(__file__), "..", "results")


def load(name):
    with open(os.path.join(R, name)) as f:
        return json.load(f)


def ms(x):
    return f"{x['mean']:.3f} (.{round(x['std'] * 1000):03d})"


def table1():
    rows = load("table1.json")
    out = ["| city | # regions | # edges | # UVs | # non-UVs |", "|---|---|---|---|---|"]
    for r in rows:
        out.append(
            f"| {r['city']} | {r['n_regions']} | {r['n_edges']} | {r['n_uvs']} | {r['n_non_uvs']} |"
        )
    return "\n".join(out)


def method_table(rows):
    out = [
        "| city | method | AUC | R@3 | P@3 | F1@3 | R@5 | P@5 | F1@5 |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        p3 = next(p for p in r["at_p"] if p["p"] == 3)
        p5 = next(p for p in r["at_p"] if p["p"] == 5)
        out.append(
            f"| {r['city']} | {r['method']} | {ms(r['auc'])} | {ms(p3['recall'])} | "
            f"{ms(p3['precision'])} | {ms(p3['f1'])} | {ms(p5['recall'])} | "
            f"{ms(p5['precision'])} | {ms(p5['f1'])} |"
        )
    return "\n".join(out)


def auc_sweep(rows, key_prefix):
    out = ["| city | " + " | ".join(r["method"].replace(key_prefix, "") for r in rows if r["city"] == rows[0]["city"]) + " |"]
    cities = []
    for r in rows:
        if r["city"] not in cities:
            cities.append(r["city"])
    out.append("|---|" + "---|" * sum(1 for r in rows if r["city"] == cities[0]))
    for c in cities:
        vals = [f"{r['auc']['mean']:.3f}" for r in rows if r["city"] == c]
        out.append(f"| {c} | " + " | ".join(vals) + " |")
    return "\n".join(out)


def table3():
    rec = load("table3.json")
    by = {}
    for r in rec["rows"]:
        by.setdefault(r["method"], {})[r["city"]] = r
    out = [
        "| method | train s/epoch (SZ) | train s/epoch (FZ) | inference s (SZ) | inference s (FZ) | size MB |",
        "|---|---|---|---|---|---|",
    ]
    for m, cities in by.items():
        sz = cities.get("shenzhen-like")
        fz = cities.get("fuzhou-like")
        out.append(
            f"| {m} | {sz['train_secs_per_epoch']:.4f} | {fz['train_secs_per_epoch']:.4f} | "
            f"{sz['inference_secs']:.4f} | {fz['inference_secs']:.4f} | {fz['model_mbytes']:.3f} |"
        )
    return "\n".join(out)


def fig7():
    rows = load("fig7.json")
    out = [
        "| city | method | precision@3 | recall@3 | spatial coherence |",
        "|---|---|---|---|---|",
    ]
    for r in rows:
        out.append(
            f"| {r['city']} | {r['method']} | {r['precision_at_3']:.3f} | "
            f"{r['recall_at_3']:.3f} | {r['spatial_coherence']:.3f} |"
        )
    return "\n".join(out)


def main():
    builders = {
        "TABLE1": table1,
        "TABLE2": lambda: method_table(load("table2.json")["rows"]),
        "FIG5A": lambda: method_table(load("fig5a.json")["rows"]),
        "FIG5B": lambda: method_table(load("fig5b.json")["rows"]),
        "FIG6A": lambda: auc_sweep(load("fig6a.json")["rows"], "CMSF(K="),
        "FIG6B": lambda: auc_sweep(load("fig6b.json")["rows"], "CMSF(lambda="),
        "FIG6C": lambda: auc_sweep(load("fig6c.json")["rows"], ""),
        "TABLE3": table3,
        "FIG7": fig7,
    }
    blocks = {}
    for key, build in builders.items():
        try:
            blocks[key] = build()
        except FileNotFoundError as e:
            print(f"skipping {key}: {e}")
    path = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")
    with open(path) as f:
        text = f.read()
    for key, block in blocks.items():
        marker_a = f"<!-- {key}:BEGIN -->"
        marker_b = f"<!-- {key}:END -->"
        if marker_a in text:
            pre, rest = text.split(marker_a, 1)
            _, post = rest.split(marker_b, 1)
            text = pre + marker_a + "\n" + block + "\n" + marker_b + post
    with open(path, "w") as f:
        f.write(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
