//! Failure injection: degenerate inputs the system must survive without
//! panics or NaNs — all-negative training splits, K=1 clustering, cities
//! with no roads, extreme label masks, and ranking with constant scores.

use uvd::prelude::*;
use uvd_eval::{auc, eval_scores, mask_ratio, prf_at_top_percent};
use uvd_tensor::seeded_rng;

fn tiny_urg(seed: u64, opts: UrgOptions) -> Urg {
    let city = City::from_config(CityPreset::tiny(), seed);
    Urg::build(&city, opts)
}

#[test]
fn training_with_no_positives_does_not_panic() {
    let urg = tiny_urg(41, UrgOptions::default());
    let negatives: Vec<usize> = (0..urg.labeled.len()).filter(|&i| urg.y[i] < 0.5).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 4;
    cfg.slave_epochs = 2;
    let mut model = Cmsf::new(&urg, cfg);
    let r = model.fit(&urg, &negatives);
    assert!(r.final_loss.is_finite());
    // Every cluster pseudo label is 0 -> C1 empty -> rank loss degenerates
    // to zero, but detection still produces valid probabilities.
    let p = model.predict(&urg);
    assert!(p.iter().all(|v| v.is_finite()));
}

#[test]
fn k_equals_one_cluster_works() {
    let urg = tiny_urg(42, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.k_clusters = 1;
    cfg.master_epochs = 4;
    cfg.slave_epochs = 2;
    let mut model = Cmsf::new(&urg, cfg);
    let r = model.fit(&urg, &train);
    assert!(r.final_loss.is_finite());
}

#[test]
fn oversized_k_leaves_empty_clusters_safely() {
    let urg = tiny_urg(43, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    // Far more clusters than distinguishable groups: most stay empty.
    cfg.k_clusters = 64;
    cfg.master_epochs = 4;
    cfg.slave_epochs = 2;
    let mut model = Cmsf::new(&urg, cfg);
    let r = model.fit(&urg, &train);
    assert!(r.final_loss.is_finite());
    assert!(model.predict(&urg).iter().all(|v| v.is_finite()));
}

#[test]
fn city_without_roads_still_builds_and_trains() {
    // A config with road_keep_prob 0 yields a road graph with no street
    // segments; road-connectivity contributes nothing but the URG must
    // still assemble from spatial edges.
    let mut cfg = CityPreset::tiny();
    cfg.road_keep_prob = 0.0;
    let city = City::from_config(cfg, 44);
    let urg = Urg::build(&city, UrgOptions::default());
    assert!(urg.pairs.len() > urg.n, "spatial edges remain");
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut mcfg = CmsfConfig::fast_test();
    mcfg.master_epochs = 4;
    mcfg.slave_epochs = 2;
    let mut model = Cmsf::new(&urg, mcfg);
    assert!(model.fit(&urg, &train).final_loss.is_finite());
}

#[test]
fn mask_ratio_zero_keeps_a_seed_of_each_class() {
    let urg = tiny_urg(45, UrgOptions::no_image());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut rng = seeded_rng(1);
    let kept = mask_ratio(&urg, &train, 0.0, &mut rng);
    assert!(kept.iter().any(|&i| urg.y[i] > 0.5));
    assert!(kept.iter().any(|&i| urg.y[i] < 0.5));
    assert!(kept.len() <= 2 + 2);
}

#[test]
fn metrics_on_constant_scores_are_sane() {
    let scores = vec![0.5f32; 10];
    let labels = vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
    let a = auc(&scores, &labels).expect("finite constant scores");
    assert!((a - 0.5).abs() < 1e-9);
    let prf = prf_at_top_percent(&scores, &labels, 30).expect("finite constant scores");
    assert!(prf.precision.is_finite() && prf.recall.is_finite());
}

#[test]
fn evaluating_an_untrained_detector_is_defined() {
    let urg = tiny_urg(46, UrgOptions::default());
    let model = Cmsf::new(&urg, CmsfConfig::fast_test());
    let scores = model.predict(&urg);
    let test: Vec<usize> = (0..urg.labeled.len()).collect();
    let (a, _) = eval_scores(&scores, &urg, &test, &[3]).expect("finite untrained scores");
    assert!((0.0..=1.0).contains(&a));
}

#[test]
fn single_modality_mlp_and_gnn_survive() {
    let urg = tiny_urg(47, UrgOptions::no_image());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut mlp = MlpBaseline::new(&urg, BaselineConfig::fast_test());
    assert!(mlp.fit(&urg, &train).final_loss.is_finite());
    let mut gcn = GraphBaseline::gcn(&urg, BaselineConfig::fast_test());
    assert!(gcn.fit(&urg, &train).final_loss.is_finite());
}
