//! Every method kind and every URG data-ablation variant runs end-to-end
//! (quick settings) — the integration surface behind Table II and Figure 5.

use uvd::prelude::*;
use uvd_eval::build_detector;

#[test]
fn all_table2_methods_run_on_full_urg() {
    let city = City::from_config(CityPreset::tiny(), 31);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    for kind in MethodKind::TABLE2 {
        let mut det = build_detector(kind, &urg, 0, true);
        let r = det.fit(&urg, &train);
        assert!(r.final_loss.is_finite(), "{:?}", kind);
        let p = det.predict(&urg);
        assert_eq!(p.len(), urg.n);
        assert!(
            p.iter().all(|v| (0.0..=1.0).contains(v)),
            "{:?} must output probabilities",
            kind
        );
    }
}

#[test]
fn all_cmsf_variants_run() {
    let city = City::from_config(CityPreset::tiny(), 32);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    for kind in MethodKind::FIG5A {
        let mut det = build_detector(kind, &urg, 0, true);
        det.fit(&urg, &train);
        assert_eq!(det.predict(&urg).len(), urg.n, "{:?}", kind);
    }
}

#[test]
fn cmsf_runs_on_every_data_ablation_variant() {
    let city = City::from_config(CityPreset::tiny(), 33);
    let variants: [(&str, UrgOptions); 6] = [
        ("noImage", UrgOptions::no_image()),
        ("noCate", UrgOptions::no_cate()),
        ("noRad", UrgOptions::no_rad()),
        ("noIndex", UrgOptions::no_index()),
        ("noRoad", UrgOptions::no_road()),
        ("noProx", UrgOptions::no_prox()),
    ];
    for (name, opts) in variants {
        let urg = Urg::build(&city, opts);
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 6;
        cfg.slave_epochs = 2;
        let mut model = Cmsf::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite(), "variant {name}");
        assert_eq!(model.predict(&urg).len(), urg.n, "variant {name}");
    }
}

#[test]
fn graph_ablations_change_edge_counts_but_not_node_count() {
    let city = City::from_config(CityPreset::tiny(), 34);
    let full = Urg::build(&city, UrgOptions::default());
    let no_road = Urg::build(&city, UrgOptions::no_road());
    let no_prox = Urg::build(&city, UrgOptions::no_prox());
    assert_eq!(full.n, no_road.n);
    assert_eq!(full.n, no_prox.n);
    // The two partial edge sets cannot both exceed the merged set.
    assert!(no_road.pairs.len() + no_prox.pairs.len() >= full.pairs.len());
    assert!(no_road.pairs.len() < full.pairs.len());
    assert!(no_prox.pairs.len() < full.pairs.len());
}
