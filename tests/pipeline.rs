//! End-to-end integration: city generation → URG → CMSF two-stage training
//! → detection → evaluation, on a tiny city.

use uvd::prelude::*;
use uvd_eval::eval_scores;

fn setup(seed: u64) -> (City, Urg) {
    let city = City::from_config(CityPreset::tiny(), seed);
    let urg = Urg::build(&city, UrgOptions::default());
    (city, urg)
}

#[test]
fn full_pipeline_detects_better_than_chance() {
    let (_, urg) = setup(1);
    let folds = block_folds(&urg, 3, 4, 7);
    let (train, test) = train_test_pairs(&folds).into_iter().next().expect("folds");
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 30;
    cfg.slave_epochs = 8;
    let mut model = Cmsf::new(&urg, cfg);
    let report = model.fit(&urg, &train);
    assert!(report.final_loss.is_finite());
    let scores = model.predict(&urg);
    let (auc, prfs) = eval_scores(&scores, &urg, &test, &[3, 5]).expect("finite trained scores");
    assert!(auc > 0.6, "test AUC {auc} should beat chance comfortably");
    // Screening metrics are well-formed.
    for (_, prf) in prfs {
        assert!((0.0..=1.0).contains(&prf.precision));
        assert!((0.0..=1.0).contains(&prf.recall));
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (_, urg) = setup(2);
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut model = Cmsf::new(&urg, CmsfConfig::fast_test());
        model.fit(&urg, &train);
        model.predict(&urg)
    };
    assert_eq!(run(), run());
}

#[test]
fn cmsf_outperforms_untrained_model() {
    let (_, urg) = setup(3);
    let folds = block_folds(&urg, 3, 4, 9);
    let (train, test) = train_test_pairs(&folds).into_iter().next().expect("folds");
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 30;
    cfg.slave_epochs = 5;
    let untrained = Cmsf::new(&urg, cfg);
    let (auc_untrained, _) =
        eval_scores(&untrained.predict(&urg), &urg, &test, &[3]).expect("finite scores");
    let mut trained = Cmsf::new(&urg, cfg);
    trained.fit(&urg, &train);
    let (auc_trained, _) =
        eval_scores(&trained.predict(&urg), &urg, &test, &[3]).expect("finite scores");
    assert!(
        auc_trained > auc_untrained + 0.05,
        "training must help: {auc_untrained} -> {auc_trained}"
    );
}

#[test]
fn live_assignment_prediction_is_consistent() {
    let (_, urg) = setup(4);
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 20;
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);
    let frozen = model.predict(&urg);
    let live = model.predict_proba_live(&urg, &train);
    assert_eq!(frozen.len(), live.len());
    // Both are probability vectors and broadly agree in ranking: the top
    // frozen-score decile should overlap the top live decile.
    let top = |v: &[f32]| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
        idx[..v.len() / 10].iter().copied().collect()
    };
    let overlap = top(&frozen).intersection(&top(&live)).count();
    assert!(
        overlap * 2 >= frozen.len() / 10,
        "rank agreement too low: {overlap}"
    );
}

#[test]
fn detector_trait_objects_are_interchangeable() {
    let (_, urg) = setup(5);
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(MlpBaseline::new(&urg, BaselineConfig::fast_test())),
        Box::new(GraphBaseline::gcn(&urg, BaselineConfig::fast_test())),
        Box::new(Cmsf::new(&urg, CmsfConfig::fast_test())),
    ];
    for det in &mut detectors {
        let r = det.fit(&urg, &train);
        assert!(r.train_secs >= 0.0);
        let p = det.predict(&urg);
        assert_eq!(p.len(), urg.n, "{}", det.name());
        assert!(det.num_params() > 0);
    }
}
