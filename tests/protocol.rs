//! Integration tests of the evaluation protocol against the real URG:
//! block-level splits, oracle metrics, and the experiment runner.

use uvd::prelude::*;
use uvd_eval::{eval_scores, run_method, MeanStd};

fn urg(seed: u64) -> Urg {
    let city = City::from_config(CityPreset::tiny(), seed);
    Urg::build(&city, UrgOptions::no_image())
}

#[test]
fn oracle_scores_achieve_perfect_metrics() {
    let urg = urg(1);
    // An oracle scoring function: the ground-truth labels.
    let mut scores = vec![0.0f32; urg.n];
    for (i, &r) in urg.labeled.iter().enumerate() {
        scores[r as usize] = urg.y[i];
    }
    let folds = block_folds(&urg, 3, 4, 3);
    for (_, test) in train_test_pairs(&folds) {
        let (a, prfs) = eval_scores(&scores, &urg, &test, &[5]).expect("finite oracle scores");
        assert!((a - 1.0).abs() < 1e-9, "oracle AUC must be 1");
        // Every top-p prediction is a true UV (as long as p% <= base rate).
        assert!(prfs[0].1.precision > 0.99);
    }
}

#[test]
fn anti_oracle_scores_achieve_zero_auc() {
    let urg = urg(2);
    let mut scores = vec![0.0f32; urg.n];
    for (i, &r) in urg.labeled.iter().enumerate() {
        scores[r as usize] = 1.0 - urg.y[i];
    }
    let test: Vec<usize> = (0..urg.labeled.len()).collect();
    let (a, _) = eval_scores(&scores, &urg, &test, &[3]).expect("finite anti-oracle scores");
    assert!(a < 1e-9);
}

#[test]
fn folds_cover_each_labeled_sample_exactly_once_as_test() {
    let urg = urg(3);
    let folds = block_folds(&urg, 3, 4, 5);
    let mut seen = vec![0usize; urg.labeled.len()];
    for (_, test) in train_test_pairs(&folds) {
        for i in test {
            seen[i] += 1;
        }
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "each sample tests exactly once"
    );
}

#[test]
fn runner_aggregates_mean_and_std() {
    let urg = urg(4);
    let spec = RunSpec {
        folds: 2,
        seeds: vec![0, 1],
        quick: true,
        ..Default::default()
    };
    let s = run_method(MethodKind::Mlp, &urg, &spec).expect("clean run");
    assert_eq!(s.runs, 4); // 2 folds × 2 seeds
    assert_eq!(s.failed, 0);
    assert!(s.auc.mean > 0.0 && s.auc.mean <= 1.0);
    // Standard deviation across two seeds is finite and not absurd.
    assert!(s.auc.std >= 0.0 && s.auc.std < 0.5);
    assert!(s.train_secs_per_epoch > 0.0);
    assert!(s.model_mbytes > 0.0);
}

#[test]
fn mean_std_display_matches_paper_format() {
    let ms = MeanStd {
        mean: 0.76231,
        std: 0.0095,
    };
    assert_eq!(format!("{ms}"), "0.762 (.010)");
}

#[test]
fn label_ratio_spec_shrinks_effective_training() {
    // With a tiny label ratio the training set shrinks and quality drops
    // (or at least does not improve) relative to the full set.
    let urg = urg(5);
    let full = RunSpec {
        folds: 2,
        seeds: vec![0],
        quick: true,
        ..Default::default()
    };
    let starved = RunSpec {
        folds: 2,
        seeds: vec![0],
        quick: true,
        label_ratio: 0.1,
        ..Default::default()
    };
    let s_full = run_method(MethodKind::Mlp, &urg, &full).expect("clean run");
    let s_starved = run_method(MethodKind::Mlp, &urg, &starved).expect("clean run");
    assert!(
        s_starved.auc.mean <= s_full.auc.mean + 0.1,
        "starved {} vs full {}",
        s_starved.auc.mean,
        s_full.auc.mean
    );
}
