//! Demonstrates the master-slave mechanism itself (paper Section V-C):
//! after the two training stages, a *slave* predictor is derived per region
//! from its cluster context — including for regions whose membership is
//! computed live at detection time, with no retraining.
//!
//! ```sh
//! cargo run --release --example adaptive_detection
//! ```

use uvd::prelude::*;
use uvd_eval::eval_scores;

fn main() {
    let city = City::from_config(CityPreset::tiny(), 21);
    let urg = Urg::build(&city, UrgOptions::default());
    let folds = block_folds(&urg, 3, 4, 5);
    let (train, test) = train_test_pairs(&folds)
        .into_iter()
        .next()
        .expect("3 folds");

    let mut cfg = CmsfConfig::for_city("tiny");
    cfg.master_epochs = 40;
    cfg.slave_epochs = 10;
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);

    // Inspect the learned hierarchy: cluster sizes and pseudo labels.
    let fixed = model.fixed_assignment().expect("trained master");
    let k = fixed.k();
    let mut sizes = vec![0usize; k];
    for &c in &fixed.cluster_of {
        sizes[c as usize] += 1;
    }
    println!("learned hierarchy ({k} latent clusters):");
    for (j, &size) in sizes.iter().enumerate() {
        if size == 0 {
            continue;
        }
        println!(
            "  cluster {j:2}: {size:4} regions, pseudo label {} (contains known UVs: {})",
            fixed.pseudo[j],
            if fixed.pseudo[j] > 0.5 { "yes" } else { "no" }
        );
    }

    // Frozen-assignment detection (training-time membership)...
    let frozen = model.predict(&urg);
    let (auc_frozen, _) = eval_scores(&frozen, &urg, &test, &[3]).expect("finite frozen scores");
    // ...vs live-assignment detection: membership recomputed from the
    // current representation, as Section V-C describes for unseen regions.
    let live = model.predict_proba_live(&urg, &train);
    let (auc_live, _) = eval_scores(&live, &urg, &test, &[3]).expect("finite live scores");
    println!("\ntest AUC with frozen membership: {auc_frozen:.3}");
    println!("test AUC with live membership:   {auc_live:.3}");

    // The point of MS-Gate: regions in different contexts get *different*
    // predictors. Show the spread of predictions for the most / least
    // UV-correlated clusters.
    let (c1, c0) = fixed.partition();
    println!(
        "\n{} clusters carry known UVs (C1), {} do not (C0); the gate derives",
        c1.len(),
        c0.len()
    );
    println!("sharper slave predictors inside C1's context:");
    let mean_prob = |clusters: &[u32]| -> f32 {
        let set: std::collections::HashSet<u32> = clusters.iter().copied().collect();
        let (mut s, mut n) = (0.0, 0usize);
        for (r, &c) in fixed.cluster_of.iter().enumerate() {
            if set.contains(&c) {
                s += frozen[r];
                n += 1;
            }
        }
        s / n.max(1) as f32
    };
    println!(
        "  mean detection probability in C1 regions: {:.3}",
        mean_prob(&c1)
    );
    println!(
        "  mean detection probability in C0 regions: {:.3}",
        mean_prob(&c0)
    );
}
