//! Head-to-head comparison of CMSF with representative baselines on one
//! dataset, using the paper's evaluation protocol (block cross-validation,
//! AUC + top-p% screening metrics).
//!
//! ```sh
//! cargo run --release --example compare_methods
//! ```

use uvd::prelude::*;

fn main() {
    let urg = dataset_urg(CityPreset::FuzhouLike, UrgOptions::default());
    println!(
        "comparing detectors on {} ({} regions, {} labeled)\n",
        urg.name,
        urg.n,
        urg.labeled.len()
    );

    let spec = RunSpec {
        folds: 3,
        seeds: vec![0],
        ..Default::default()
    };
    println!(
        "{:8} | {:>6} | {:>8} {:>10} {:>6} | {:>10} {:>8}",
        "method", "AUC", "Recall@3", "Precision@3", "F1@3", "s/epoch", "size MB"
    );
    for kind in [
        MethodKind::Mlp,
        MethodKind::Gcn,
        MethodKind::Gat,
        MethodKind::Uvlens,
        MethodKind::Cmsf,
    ] {
        let s = match run_method(kind, &urg, &spec) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("{:8} | skipped: {err}", kind.label());
                continue;
            }
        };
        let p3 = s.at(3).expect("p=3 metrics");
        println!(
            "{:8} | {:>6.3} | {:>8.3} {:>10.3} {:>6.3} | {:>10.4} {:>8.3}",
            s.method,
            s.auc.mean,
            p3.recall.mean,
            p3.precision.mean,
            p3.f1.mean,
            s.train_secs_per_epoch,
            s.model_mbytes
        );
    }

    println!(
        "\nCMSF couples graph attention over the URG with cluster-level context \
         and per-region slave predictors; the baselines either ignore the graph \
         (MLP, UVLens) or use a single global model (GCN, GAT)."
    );
}
