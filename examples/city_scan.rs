//! City-wide urban-village scan — the deployment scenario from the paper's
//! introduction: a city manager needs the panorama of UV distribution with
//! acceptable verification labor, so the detector screens the whole grid and
//! hands back a ranked candidate list plus a map.
//!
//! ```sh
//! cargo run --release --example city_scan
//! ```

use uvd::prelude::*;

fn main() {
    // The "collected" dataset: the Fuzhou-like preset city.
    let city = City::from_preset(CityPreset::FuzhouLike, 20200602);
    let urg = Urg::build(&city, UrgOptions::default());
    println!(
        "scanning {}: {} regions, {} labeled by survey ({} known UVs)",
        city.name,
        urg.n,
        urg.labeled.len(),
        urg.y.iter().filter(|&&v| v > 0.5).count()
    );

    // Train on every labeled region (deployment uses all knowledge).
    let train_idx: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, CmsfConfig::for_city(&urg.name));
    let report = model.fit(&urg, &train_idx);
    println!(
        "trained in {:.1}s ({} epochs)",
        report.train_secs, report.epochs
    );

    // Rank all *unlabeled* regions: those are the candidates worth a site
    // visit (labeled ones are already known).
    let probs = model.predict(&urg);
    let labeled: std::collections::HashSet<u32> = urg.labeled.iter().copied().collect();
    let mut candidates: Vec<usize> = (0..urg.n)
        .filter(|&r| !labeled.contains(&(r as u32)))
        .collect();
    candidates.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));

    let k = (candidates.len() as f64 * 0.03).ceil() as usize;
    let short_list = &candidates[..k];
    let true_hits = short_list.iter().filter(|&&r| city.is_uv(r)).count();
    let undiscovered_total = (0..urg.n)
        .filter(|&r| city.is_uv(r) && !labeled.contains(&(r as u32)))
        .count();
    println!(
        "\nshort list: {k} unlabeled candidates → {true_hits} are real undiscovered UV regions \
         (of {undiscovered_total} hidden in the city)"
    );

    // A field-team map: '*' = candidate, '#' = already-known UV, '.' = other.
    let short: std::collections::HashSet<usize> = short_list.iter().copied().collect();
    let known: std::collections::HashSet<u32> = urg
        .labeled
        .iter()
        .zip(&urg.y)
        .filter(|&(_, &y)| y > 0.5)
        .map(|(&r, _)| r)
        .collect();
    println!("\ncandidate map ('*' candidate, '#' known UV):");
    for y in 0..city.height {
        let mut row = String::with_capacity(city.width);
        for x in 0..city.width {
            let r = y * city.width + x;
            row.push(if short.contains(&r) {
                '*'
            } else if known.contains(&(r as u32)) {
                '#'
            } else {
                '.'
            });
        }
        println!("{row}");
    }
}
