//! Label-scarcity study (the paper's Figure 6(c) scenario): how gracefully
//! does CMSF degrade as the labeled training data shrinks, compared to an
//! image-only CNN baseline?
//!
//! ```sh
//! cargo run --release --example label_scarcity
//! ```

use uvd::prelude::*;
use uvd_eval::eval_scores;
use uvd_tensor::seeded_rng;

fn main() {
    let city = City::from_config(CityPreset::tiny(), 11);
    let urg = Urg::build(&city, UrgOptions::default());
    let folds = block_folds(&urg, 3, 4, 7);
    let (train_full, test) = train_test_pairs(&folds)
        .into_iter()
        .next()
        .expect("3 folds");
    println!(
        "label-scarcity study on '{}' ({} training labels at 100%)\n",
        city.name,
        train_full.len()
    );

    println!("{:>6} | {:>10} | {:>10}", "ratio", "CMSF AUC", "UVLens AUC");
    for ratio in [0.10, 0.25, 0.50, 0.75, 1.0] {
        let mut rng = seeded_rng(99);
        let train = uvd_eval::mask_ratio(&urg, &train_full, ratio, &mut rng);

        let mut cfg = CmsfConfig::for_city(&urg.name);
        cfg.master_epochs = 40;
        cfg.slave_epochs = 10;
        let mut cmsf_model = Cmsf::new(&urg, cfg);
        cmsf_model.fit(&urg, &train);
        let (cmsf_auc, _) =
            eval_scores(&cmsf_model.predict(&urg), &urg, &test, &[3]).expect("finite CMSF scores");

        let bcfg = BaselineConfig {
            epochs: 20,
            ..Default::default()
        };
        let mut uvlens = UvlensBaseline::new(&urg, bcfg);
        uvlens.fit(&urg, &train);
        let (uv_auc, _) =
            eval_scores(&uvlens.predict(&urg), &urg, &test, &[3]).expect("finite UVLens scores");

        println!(
            "{:>5.0}% | {:>10.3} | {:>10.3}",
            ratio * 100.0,
            cmsf_auc,
            uv_auc
        );
    }

    println!(
        "\nCMSF's hierarchy lets the few known UVs share context with every \
         similar region, so performance degrades more gracefully than a \
         per-region CNN when labels get scarce."
    );
}
