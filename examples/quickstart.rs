//! Quickstart: generate a synthetic city, build its Urban Region Graph,
//! train CMSF, and screen for urban-village candidates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uvd::prelude::*;

fn main() {
    // 1. A city. Presets mirror the paper's three datasets; `tiny()` is a
    //    ~300-region city that trains in seconds.
    let city = City::from_config(CityPreset::tiny(), 42);
    println!(
        "city '{}': {} regions, {} POIs, {} road segments, {} true UV regions",
        city.name,
        city.n_regions(),
        city.pois.len(),
        city.roads.edges.len(),
        city.n_true_uvs()
    );

    // 2. The Urban Region Graph: spatial + road-connectivity edges, POI
    //    features (category distribution, radius buckets, facility index)
    //    and VGG-sim image features.
    let urg = Urg::build(&city, UrgOptions::default());
    println!(
        "URG: {} edges, {}-d POI features, {}-d image features, {} labeled regions",
        urg.pairs.len(),
        urg.x_poi.cols(),
        urg.x_img.cols(),
        urg.labeled.len()
    );

    // 3. Train CMSF: the master stage learns the hierarchical GNN; the
    //    slave stage derives region-specific predictors through MS-Gate.
    let train_idx: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut config = CmsfConfig::for_city(&urg.name);
    config.master_epochs = 40;
    config.slave_epochs = 10;
    let mut model = Cmsf::new(&urg, config);
    let report = model.fit(&urg, &train_idx);
    println!(
        "trained {} epochs in {:.1}s (final loss {:.4}, {} parameters)",
        report.epochs,
        report.train_secs,
        report.final_loss,
        model.num_params()
    );

    // 4. Detect: probability of being an urban village for every region;
    //    screen the top 3% as candidates for field verification.
    let probs = model.predict(&urg);
    let mut ranked: Vec<usize> = (0..urg.n).collect();
    ranked.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
    let k = (urg.n as f64 * 0.03).ceil() as usize;
    let hits = ranked[..k].iter().filter(|&&r| city.is_uv(r)).count();
    println!("top-3% screening: {k} candidate regions, {hits} are true urban villages");
    println!("top-5 candidates:");
    for &r in &ranked[..5] {
        let (x, y) = city.region_xy(r);
        println!(
            "  region {r} at ({x},{y}): p={:.3}, truth={:?}",
            probs[r], city.land_use[r]
        );
    }
}
