//! # uvd — urban village detection on urban region graphs
//!
//! Umbrella crate for the Rust reproduction of *"A Contextual Master-Slave
//! Framework on Urban Region Graph for Urban Village Detection"* (ICDE 2023).
//!
//! The workspace is organized bottom-up:
//!
//! * [`uvd_tensor`] — dense matrices + tape autodiff + Adam.
//! * [`uvd_citysim`] — synthetic city generator (the data substrate).
//! * [`uvd_urg`] — Urban Region Graph construction and features.
//! * [`uvd_nn`] — neural network layers (attention, GCN, CNN, MLP).
//! * [`cmsf`] — the paper's contribution: MAGA + GSCM + MS-Gate.
//! * [`uvd_baselines`] — the seven Table II comparison methods.
//! * [`uvd_eval`] — metrics, block CV, experiment runner.
//!
//! ```
//! use uvd::prelude::*;
//!
//! let city = City::from_config(CityPreset::tiny(), 7);
//! let urg = Urg::build(&city, UrgOptions::default());
//! let train: Vec<usize> = (0..urg.labeled.len()).collect();
//! let mut model = Cmsf::new(&urg, CmsfConfig::fast_test());
//! model.fit(&urg, &train);
//! assert_eq!(model.predict(&urg).len(), urg.n);
//! ```

pub use cmsf;
pub use uvd_baselines;
pub use uvd_citysim;
pub use uvd_eval;
pub use uvd_nn;
pub use uvd_tensor;
pub use uvd_urg;

/// The common imports for working with the system.
pub mod prelude {
    pub use cmsf::{Cmsf, CmsfConfig};
    pub use uvd_baselines::{BaselineConfig, GraphBaseline, MlpBaseline, UvlensBaseline};
    pub use uvd_citysim::{City, CityConfig, CityPreset, LandUse, RegionProfile};
    pub use uvd_eval::{
        auc, block_folds, dataset_urg, prf_at_top_percent, run_method, train_test_pairs,
        MethodKind, RunSpec,
    };
    pub use uvd_urg::{Detector, Urg, UrgOptions};
}
